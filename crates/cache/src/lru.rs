//! The in-process layer: a sharded LRU map over [`CompileOutput`]s.
//!
//! Lock granularity is one `Mutex` per shard (no external dependencies, no
//! lock-free cleverness): a rayon sweep's worker threads hash to different
//! shards with high probability, so contention stays negligible next to
//! compile times. Keys are already uniform 64-bit fingerprints, so shard
//! selection is a simple XOR-fold — no re-hashing needed.
//!
//! Eviction is cost-aware (a GreedyDual-style twist on LRU): each entry
//! carries a bonus of `8 × log2(recompile-µs)` logical ticks, derived from
//! its recorded [`zac_core::PhaseTimings`] (placement + scheduling — the
//! dominant, deterministic recompute cost) with `compile_time` as the
//! fallback. The victim minimizes `tick + bonus`, so at equal recency the
//! cheap-to-recompute entry goes first, while a merely-expensive entry
//! cannot pin itself forever: every access to anything else advances the
//! clock, and a stale entry's finite bonus is eventually outrun. Entries
//! with equal cost tie-break on `tick` alone — classic LRU.

use crate::CacheKey;
use std::collections::HashMap;
use std::sync::Mutex;
use zac_core::CompileOutput;
use zac_telemetry::metrics;

/// Number of independently locked shards. A power of two so the modulo
/// compiles to a mask; 16 comfortably exceeds typical rayon pool widths.
pub const SHARDS: usize = 16;

// The per-shard telemetry families are sized once, in zac-telemetry; keep
// the two constants from drifting apart.
const _: () = assert!(SHARDS == metrics::CACHE_SHARDS);

struct Entry {
    output: CompileOutput,
    /// Logical access time within the owning shard (monotonic per shard).
    tick: u64,
    /// Cost-aware eviction credit, in ticks (see module docs).
    bonus: u64,
}

/// Ticks of eviction credit per doubling of recompute cost.
const BONUS_PER_DOUBLING: u64 = 8;

/// Eviction credit for `output`: `8 × log2(recompile-µs)` ticks.
fn cost_bonus(output: &CompileOutput) -> u64 {
    let recompute = match &output.phases {
        Some(p) => p.place + p.schedule,
        None => output.compile_time,
    };
    let micros = u64::try_from(recompute.as_micros()).unwrap_or(u64::MAX).max(1);
    BONUS_PER_DOUBLING * u64::from(micros.ilog2())
}

#[derive(Default)]
struct Shard {
    map: HashMap<CacheKey, Entry>,
    clock: u64,
}

impl Shard {
    fn touch(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }
}

/// A fixed-capacity, sharded least-recently-used map.
///
/// Capacity is enforced per shard (`ceil(capacity / SHARDS)`, minimum 1),
/// so the total resident entry count can exceed the requested capacity by
/// at most `SHARDS - 1` under adversarial key distributions — an accepted
/// trade for per-shard locking.
pub struct ShardedLru {
    shards: Vec<Mutex<Shard>>,
    per_shard_capacity: usize,
}

impl ShardedLru {
    /// A map holding roughly `capacity` entries (at least one per shard).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        Self {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            per_shard_capacity: capacity.div_ceil(SHARDS).max(1),
        }
    }

    /// Shard index for `key` (exposed so per-shard statistics line up with
    /// the actual placement of entries).
    pub fn shard_index(key: CacheKey) -> usize {
        // Fingerprints are uniform; fold the two halves and mask.
        (key.circuit ^ key.compiler) as usize % SHARDS
    }

    fn shard(&self, key: CacheKey) -> &Mutex<Shard> {
        &self.shards[Self::shard_index(key)]
    }

    /// Looks up `key`, refreshing its recency. Returns a clone.
    pub fn get(&self, key: CacheKey) -> Option<CompileOutput> {
        let mut shard = self.shard(key).lock().expect("cache shard poisoned");
        let tick = shard.touch();
        let Some(entry) = shard.map.get_mut(&key) else {
            metrics::CACHE_SHARD_MISSES.add(Self::shard_index(key), 1);
            return None;
        };
        entry.tick = tick;
        metrics::CACHE_SHARD_HITS.add(Self::shard_index(key), 1);
        Some(entry.output.clone())
    }

    /// Inserts (or refreshes) `key`, evicting the shard's lowest-value
    /// entry (recency + recompute-cost bonus; see module docs) when full.
    /// Returns the number of evictions (0 or 1).
    pub fn insert(&self, key: CacheKey, output: CompileOutput) -> u64 {
        let mut shard = self.shard(key).lock().expect("cache shard poisoned");
        let tick = shard.touch();
        let mut evicted = 0;
        let is_new = !shard.map.contains_key(&key);
        if is_new && shard.map.len() >= self.per_shard_capacity {
            let victim = shard
                .map
                .iter()
                .min_by_key(|(_, e)| (e.tick.saturating_add(e.bonus), e.tick))
                .map(|(&k, _)| k);
            if let Some(lru) = victim {
                shard.map.remove(&lru);
                evicted = 1;
                metrics::CACHE_SHARD_EVICTIONS.add(Self::shard_index(key), 1);
            }
        }
        let bonus = cost_bonus(&output);
        shard.map.insert(key, Entry { output, tick, bonus });
        if is_new && evicted == 0 {
            metrics::CACHE_RESIDENT.add(1);
        }
        evicted
    }

    /// Number of resident entries across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().expect("cache shard poisoned").map.len()).sum()
    }

    /// Resident entries per shard, in shard-index order.
    pub fn shard_lens(&self) -> [usize; SHARDS] {
        let mut lens = [0usize; SHARDS];
        for (len, shard) in lens.iter_mut().zip(&self.shards) {
            *len = shard.lock().expect("cache shard poisoned").map.len();
        }
        lens
    }

    /// Whether the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;
    use zac_fidelity::{evaluate_neutral_atom, ExecutionSummary, NeutralAtomParams};

    fn output(tag: usize) -> CompileOutput {
        let summary = ExecutionSummary {
            name: format!("c{tag}"),
            num_qubits: 2,
            duration_us: tag as f64,
            g1: tag,
            g2: 0,
            n_exc: 0,
            n_tran: 0,
            idle_us: vec![0.0, 0.0],
        };
        let report = evaluate_neutral_atom(&summary, &NeutralAtomParams::reference());
        CompileOutput::new(summary, report, Duration::from_millis(1), None)
    }

    /// Keys landing in one shard, so per-shard LRU order is observable.
    fn same_shard_key(i: u64) -> CacheKey {
        // circuit ^ compiler ≡ 0 mod SHARDS for every i.
        CacheKey { circuit: i * SHARDS as u64, compiler: 0 }
    }

    /// An output whose recorded recompute cost (place + schedule) is
    /// `micros` microseconds.
    fn output_with_cost(tag: usize, micros: u64) -> CompileOutput {
        output(tag).with_phases(
            Duration::from_micros(micros / 2),
            Duration::from_micros(micros - micros / 2),
        )
    }

    #[test]
    fn get_refreshes_recency() {
        let lru = ShardedLru::new(3 * SHARDS); // 3 slots in the target shard
        for i in 0..3 {
            lru.insert(same_shard_key(i), output(i as usize));
        }
        // Touch key 0 so key 1 becomes the LRU.
        assert!(lru.get(same_shard_key(0)).is_some());
        assert_eq!(lru.insert(same_shard_key(3), output(3)), 1);
        assert!(lru.get(same_shard_key(0)).is_some(), "refreshed entry survives");
        assert!(lru.get(same_shard_key(1)).is_none(), "LRU entry evicted");
        assert!(lru.get(same_shard_key(2)).is_some());
        assert!(lru.get(same_shard_key(3)).is_some());
    }

    #[test]
    fn reinsert_refreshes_without_eviction() {
        let lru = ShardedLru::new(2 * SHARDS);
        lru.insert(same_shard_key(0), output(0));
        lru.insert(same_shard_key(1), output(1));
        assert_eq!(lru.insert(same_shard_key(0), output(7)), 0, "refresh evicts nothing");
        assert_eq!(lru.len(), 2);
        assert_eq!(lru.get(same_shard_key(0)).unwrap().summary.g1, 7);
    }

    #[test]
    fn capacity_is_at_least_one_per_shard() {
        let lru = ShardedLru::new(1);
        lru.insert(CacheKey { circuit: 1, compiler: 2 }, output(1));
        lru.insert(CacheKey { circuit: 3, compiler: 4 }, output(2));
        assert!(!lru.is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        ShardedLru::new(0);
    }

    /// Cost-aware eviction: at comparable recency, the cheap-to-recompute
    /// entry is the victim even though the expensive one is older.
    #[test]
    fn expensive_entry_outlives_cheaper_newer_one() {
        let lru = ShardedLru::new(2 * SHARDS); // 2 slots in the target shard
        lru.insert(same_shard_key(0), output_with_cost(0, 1_000_000)); // ~10 ms phases
        lru.insert(same_shard_key(1), output_with_cost(1, 1)); // trivially cheap
        assert_eq!(lru.insert(same_shard_key(2), output_with_cost(2, 1)), 1);
        assert!(lru.get(same_shard_key(0)).is_some(), "expensive entry survives");
        assert!(lru.get(same_shard_key(1)).is_none(), "cheap newer entry was the victim");
    }

    /// At equal cost the policy degenerates to classic LRU: recency alone
    /// picks the victim.
    #[test]
    fn recency_decides_at_equal_cost() {
        let lru = ShardedLru::new(2 * SHARDS);
        lru.insert(same_shard_key(0), output_with_cost(0, 500));
        lru.insert(same_shard_key(1), output_with_cost(1, 500));
        assert!(lru.get(same_shard_key(0)).is_some(), "refresh key 0; key 1 becomes LRU");
        lru.insert(same_shard_key(2), output_with_cost(2, 500));
        assert!(lru.get(same_shard_key(0)).is_some());
        assert!(lru.get(same_shard_key(1)).is_none(), "least-recent equal-cost entry evicted");
    }

    /// The bonus is finite: a stale expensive entry cannot pin its slot
    /// forever once cheaper entries accumulate enough recency.
    #[test]
    fn stale_expensive_entry_is_eventually_outrun() {
        let lru = ShardedLru::new(2 * SHARDS);
        lru.insert(same_shard_key(0), output_with_cost(0, 1 << 30)); // bonus 8 × 30 = 240 ticks
        lru.insert(same_shard_key(1), output_with_cost(1, 1));
        // Touch the cheap entry until its recency outruns the bonus.
        for _ in 0..300 {
            assert!(lru.get(same_shard_key(1)).is_some());
        }
        assert_eq!(lru.insert(same_shard_key(2), output_with_cost(2, 1)), 1);
        assert!(lru.get(same_shard_key(0)).is_none(), "stale expensive entry finally evicted");
        assert!(lru.get(same_shard_key(1)).is_some());
    }

    /// Per-shard occupancy is observable, and empty shards report zero
    /// (the empty-shard side of the hit-rate regression: statistics over a
    /// shard with no traffic must be well-defined, never a division).
    #[test]
    fn shard_lens_reports_empty_shards_as_zero() {
        let lru = ShardedLru::new(4 * SHARDS);
        assert_eq!(lru.shard_lens(), [0; SHARDS], "fresh map: every shard empty");
        for i in 0..3 {
            lru.insert(same_shard_key(i), output(i as usize));
        }
        let lens = lru.shard_lens();
        let target = ShardedLru::shard_index(same_shard_key(0));
        assert_eq!(lens[target], 3, "all keys fold into one shard");
        assert_eq!(lens.iter().sum::<usize>(), lru.len());
        assert_eq!(lens.iter().filter(|&&l| l == 0).count(), SHARDS - 1);
    }
}
