//! Content-addressed compilation caching for the ZAC workspace.
//!
//! Every compiler behind [`zac_core::Compiler`] is deterministic given its
//! configuration (asserted in `tests/compiler_trait.rs`), so a compile
//! output is fully determined by the pair
//!
//! ```text
//! CacheKey = (StagedCircuit::fingerprint(), Compiler::fingerprint())
//! ```
//!
//! — the circuit's content digest and the compiler's (name, architecture,
//! config) digest, both stable 64-bit FNV-1a values (see
//! `zac_circuit::fingerprint` for the stability contract). This crate turns
//! that determinism into two cache layers:
//!
//! * [`lru::ShardedLru`] — an in-process, `Mutex`-per-shard LRU holding
//!   [`CompileOutput`] clones, sized in entries, with cost-aware eviction
//!   (cheap-to-recompute entries evict before expensive ones at comparable
//!   recency);
//! * a disk tier — either [`disk::DiskLayer`] (one versioned JSON file per
//!   entry; the legacy layout) or [`segment::SegmentStore`] (an append-only
//!   segment log with an in-memory index, compaction, crash-safe tail
//!   recovery, and advisory cross-process sharing), consulted lazily on
//!   in-memory misses and shared across processes.
//!
//! [`CompileCache`] composes the layers behind one `get`/`put` API with
//! [`CacheStats`] counters, and [`CachedCompiler`] wraps any compiler so
//! caching slots transparently into harness code — including
//! `zac_bench::BatchRunner::with_cache`, which shares one cache across a
//! whole suite × compiler sweep.
//!
//! Cache hits return the *original* `compile_time` (never the lookup time)
//! and are marked with [`CompileOutput::from_cache`]` == true`; everything
//! else about a hit is bit-identical to the cold output.
//!
//! # Example
//!
//! ```
//! use zac_arch::Architecture;
//! use zac_cache::{CachedCompiler, CompileCache};
//! use zac_circuit::{bench_circuits, preprocess};
//! use zac_core::{Compiler, Zac};
//!
//! let cache = CompileCache::in_memory(1024);
//! let zac = CachedCompiler::new(Zac::new(Architecture::reference()), cache.clone());
//! let staged = preprocess(&bench_circuits::ghz(8));
//!
//! let cold = zac.compile(&staged)?;          // compiles
//! let warm = zac.compile(&staged)?;          // served from the cache
//! assert!(!cold.from_cache && warm.from_cache);
//! assert_eq!(warm.report, cold.report);
//! assert_eq!(warm.compile_time, cold.compile_time); // original, not lookup
//! assert_eq!(cache.stats().hits, 1);
//! # Ok::<(), zac_core::CompileError>(())
//! ```

pub mod disk;
pub mod lru;
pub mod segment;

use disk::DiskLayer;
use lru::ShardedLru;
use segment::{SegmentStats, SegmentStore};
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use zac_circuit::StagedCircuit;
use zac_core::{CompileError, CompileOutput, Compiler, CorpusManifest};
use zac_telemetry::metrics;

pub use zac_circuit::Fingerprint;

/// The content-addressed identity of one compilation cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// [`StagedCircuit::fingerprint`] of the input.
    pub circuit: u64,
    /// [`Compiler::fingerprint`] of the compiler (name + arch + config).
    pub compiler: u64,
}

impl CacheKey {
    /// Computes the key for running `compiler` on `staged`.
    pub fn compute(compiler: &dyn Compiler, staged: &StagedCircuit) -> Self {
        Self { circuit: staged.fingerprint(), compiler: compiler.fingerprint() }
    }

    /// Filesystem-safe stem for the disk layer: two 16-digit hex halves.
    pub fn file_stem(&self) -> String {
        format!("{:016x}-{:016x}", self.circuit, self.compiler)
    }
}

/// A monotonically counted snapshot of cache activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups served from the in-memory LRU.
    pub hits: u64,
    /// Lookups that missed memory but loaded from the disk layer.
    pub disk_hits: u64,
    /// Lookups that found nothing in any layer.
    pub misses: u64,
    /// Entries stored via `put`.
    pub insertions: u64,
    /// Entries evicted from the LRU to make room.
    pub evictions: u64,
    /// Entries persisted to the disk layer.
    pub disk_writes: u64,
    /// Disk store/load failures ignored at the API surface (I/O errors,
    /// non-finite outputs) — nonzero values merit investigation.
    pub disk_errors: u64,
    /// Corrupt disk entries renamed to `*.quarantine` and treated as clean
    /// misses (see [`disk::LoadOutcome::Quarantined`]).
    pub quarantined: u64,
    /// Transient disk-write failures absorbed by the store retry loop
    /// (successful writes only; exhausted budgets count in `disk_errors`).
    pub disk_retries: u64,
    /// Entries currently resident in memory.
    pub resident: usize,
}

impl CacheStats {
    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.hits + self.disk_hits + self.misses
    }

    /// Fraction of lookups served from any layer (0 when no lookups yet).
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.lookups();
        if lookups == 0 {
            0.0
        } else {
            (self.hits + self.disk_hits) as f64 / lookups as f64
        }
    }
}

#[derive(Default)]
struct Counters {
    hits: AtomicU64,
    disk_hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
    disk_writes: AtomicU64,
    disk_errors: AtomicU64,
    quarantined: AtomicU64,
    disk_retries: AtomicU64,
}

/// The persistent layer behind the in-memory LRU.
enum DiskTier {
    /// Legacy layout: one versioned JSON file per entry.
    PerFile(DiskLayer),
    /// Segment-log layout: append-only records, shared across processes.
    Segment(Box<SegmentStore>),
}

impl DiskTier {
    fn load_classified(&self, key: CacheKey) -> disk::LoadOutcome {
        match self {
            DiskTier::PerFile(d) => d.load_classified(key),
            DiskTier::Segment(s) => s.load_classified(key),
        }
    }

    fn store(&self, key: CacheKey, output: &CompileOutput) -> io::Result<u64> {
        match self {
            DiskTier::PerFile(d) => d.store(key, output),
            DiskTier::Segment(s) => s.append(key, output),
        }
    }

    fn dir(&self) -> &std::path::Path {
        match self {
            DiskTier::PerFile(d) => d.dir(),
            DiskTier::Segment(s) => s.dir(),
        }
    }
}

struct Inner {
    lru: ShardedLru,
    disk: Option<DiskTier>,
    counters: Counters,
}

/// What [`CompileCache::warm_from_manifest`] accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WarmReport {
    /// Cells the manifest asked for.
    pub requested: usize,
    /// Cells found on disk and promoted into the memory tier.
    pub warmed: usize,
}

/// A two-layer (memory + optional disk) compilation cache.
///
/// Cloning is cheap (`Arc`) and clones share storage and counters — hand
/// one cache to every [`CachedCompiler`] and `BatchRunner` in a process so
/// sweeps share hits.
#[derive(Clone)]
pub struct CompileCache {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for CompileCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompileCache")
            .field("stats", &self.stats())
            .field("disk", &self.inner.disk.as_ref().map(|d| d.dir().to_path_buf()))
            .field("segment", &self.segment_stats())
            .finish()
    }
}

impl CompileCache {
    /// A memory-only cache holding roughly `capacity` outputs.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn in_memory(capacity: usize) -> Self {
        Self {
            inner: Arc::new(Inner {
                lru: ShardedLru::new(capacity),
                disk: None,
                counters: Counters::default(),
            }),
        }
    }

    /// A cache backed by a persistent directory: misses fall through to
    /// `dir`, and every `put` is also written there (atomically), so a
    /// second process — or a second run — starts warm.
    ///
    /// # Errors
    ///
    /// [`io::Error`] if the directory cannot be created.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_disk(capacity: usize, dir: impl Into<PathBuf>) -> io::Result<Self> {
        Ok(Self {
            inner: Arc::new(Inner {
                lru: ShardedLru::new(capacity),
                disk: Some(DiskTier::PerFile(DiskLayer::new(dir)?)),
                counters: Counters::default(),
            }),
        })
    }

    /// A cache backed by the segment-log store: misses fall through to the
    /// log's index, every `put` appends a record, and N processes opening
    /// the same `dir` share one store (each appends to its own active
    /// segment; readers pick up foreign records on miss). Legacy per-file
    /// entries already in `dir` are still readable and migrate into the log
    /// on first read.
    ///
    /// # Errors
    ///
    /// [`io::Error`] if the directory cannot be created or the opening
    /// recovery/compaction scan fails.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_segment_store(capacity: usize, dir: impl Into<PathBuf>) -> io::Result<Self> {
        Ok(Self {
            inner: Arc::new(Inner {
                lru: ShardedLru::new(capacity),
                disk: Some(DiskTier::Segment(Box::new(SegmentStore::open(dir)?))),
                counters: Counters::default(),
            }),
        })
    }

    /// Looks `key` up in memory, then (on miss) on disk. Hits come back
    /// with [`CompileOutput::from_cache`] set and their original
    /// `compile_time`; disk hits are promoted into memory.
    pub fn get(&self, key: CacheKey) -> Option<CompileOutput> {
        let c = &self.inner.counters;
        if let Some(mut out) = self.inner.lru.get(key) {
            c.hits.fetch_add(1, Ordering::Relaxed);
            metrics::CACHE_HITS.incr();
            out.from_cache = true;
            return Some(out);
        }
        if let Some(disk) = &self.inner.disk {
            match disk.load_classified(key) {
                disk::LoadOutcome::Hit(out) => {
                    let mut out = *out;
                    c.disk_hits.fetch_add(1, Ordering::Relaxed);
                    metrics::CACHE_DISK_HITS.incr();
                    let evicted = self.inner.lru.insert(key, out.clone());
                    c.evictions.fetch_add(evicted, Ordering::Relaxed);
                    metrics::CACHE_EVICTIONS.add(evicted);
                    out.from_cache = true;
                    return Some(out);
                }
                disk::LoadOutcome::Quarantined => {
                    c.quarantined.fetch_add(1, Ordering::Relaxed);
                    metrics::CACHE_DISK_QUARANTINED.incr();
                }
                disk::LoadOutcome::ReadError => {
                    c.disk_errors.fetch_add(1, Ordering::Relaxed);
                    metrics::CACHE_DISK_READ_ERRORS.incr();
                }
                disk::LoadOutcome::Miss => {}
            }
        }
        c.misses.fetch_add(1, Ordering::Relaxed);
        metrics::CACHE_MISSES.incr();
        None
    }

    /// Stores `key → output` in memory and, when configured, on disk.
    /// The stored copy is normalized to `from_cache == false` so each
    /// layer hands out pristine outputs and `get` alone marks hits.
    pub fn put(&self, key: CacheKey, output: &CompileOutput) {
        let c = &self.inner.counters;
        let mut pristine = output.clone();
        pristine.from_cache = false;
        if let Some(disk) = &self.inner.disk {
            match disk.store(key, &pristine) {
                Ok(retries) => {
                    c.disk_writes.fetch_add(1, Ordering::Relaxed);
                    c.disk_retries.fetch_add(retries, Ordering::Relaxed);
                    metrics::CACHE_DISK_RETRIES.add(retries);
                }
                Err(_) => {
                    c.disk_errors.fetch_add(1, Ordering::Relaxed);
                }
            };
        }
        let evicted = self.inner.lru.insert(key, pristine);
        c.evictions.fetch_add(evicted, Ordering::Relaxed);
        c.insertions.fetch_add(1, Ordering::Relaxed);
        metrics::CACHE_EVICTIONS.add(evicted);
        metrics::CACHE_INSERTIONS.incr();
    }

    /// Whether a disk layer is configured.
    pub fn has_disk(&self) -> bool {
        self.inner.disk.is_some()
    }

    /// A consistent-enough snapshot of the counters (individual counters
    /// are exact; cross-counter sums may be mid-update under concurrency).
    pub fn stats(&self) -> CacheStats {
        let c = &self.inner.counters;
        CacheStats {
            hits: c.hits.load(Ordering::Relaxed),
            disk_hits: c.disk_hits.load(Ordering::Relaxed),
            misses: c.misses.load(Ordering::Relaxed),
            insertions: c.insertions.load(Ordering::Relaxed),
            evictions: c.evictions.load(Ordering::Relaxed),
            disk_writes: c.disk_writes.load(Ordering::Relaxed),
            disk_errors: c.disk_errors.load(Ordering::Relaxed),
            quarantined: c.quarantined.load(Ordering::Relaxed),
            disk_retries: c.disk_retries.load(Ordering::Relaxed),
            resident: self.inner.lru.len(),
        }
    }

    /// What the disk layer's opening recovery scan found (`None` for
    /// memory-only caches). For the segment tier this reports the legacy
    /// per-file sweep that runs beneath it.
    pub fn recovery_report(&self) -> Option<disk::RecoveryReport> {
        self.inner.disk.as_ref().map(|tier| match tier {
            DiskTier::PerFile(d) => d.recovery(),
            DiskTier::Segment(s) => s.legacy().recovery(),
        })
    }

    /// Segment-store counters (`None` unless built with
    /// [`with_segment_store`](Self::with_segment_store)).
    pub fn segment_stats(&self) -> Option<SegmentStats> {
        match self.inner.disk.as_ref()? {
            DiskTier::Segment(s) => Some(s.stats()),
            DiskTier::PerFile(_) => None,
        }
    }

    /// Preloads the manifest's cells from the disk tier into the memory
    /// tier, so the first client wave hits memory instead of paying disk
    /// rehydration per request. Cells absent from disk are skipped (they
    /// warm naturally on first compile). A memory-only cache warms nothing.
    ///
    /// The segment tier services this with one sequential read per touched
    /// segment rather than one lookup per cell.
    pub fn warm_from_manifest(&self, manifest: &CorpusManifest) -> WarmReport {
        let mut report = WarmReport { requested: manifest.len(), warmed: 0 };
        let Some(tier) = self.inner.disk.as_ref() else { return report };
        let keys: Vec<CacheKey> = manifest
            .entries
            .iter()
            .map(|e| CacheKey { circuit: e.circuit, compiler: e.compiler })
            .collect();
        let c = &self.inner.counters;
        let mut insert = |key: CacheKey, out: CompileOutput| {
            let evicted = self.inner.lru.insert(key, out);
            c.evictions.fetch_add(evicted, Ordering::Relaxed);
            metrics::CACHE_EVICTIONS.add(evicted);
            report.warmed += 1;
        };
        match tier {
            DiskTier::Segment(s) => {
                for (key, out) in s.bulk_load(&keys) {
                    insert(key, out);
                }
            }
            DiskTier::PerFile(d) => {
                for key in keys {
                    if let disk::LoadOutcome::Hit(out) = d.load_classified(key) {
                        insert(key, *out);
                    }
                }
            }
        }
        report
    }
}

/// Wraps a compiler so every `compile` consults a [`CompileCache`] first.
///
/// Transparent by construction: `name`, `config_tokens` and `fingerprint`
/// all forward to the inner compiler, so a cached and an uncached instance
/// of the same compiler share cache entries — and a `CachedCompiler` can
/// replace its inner compiler anywhere (legend labels, sweep lineups)
/// without changing results.
///
/// Only successful outputs are cached; errors ([`CompileError`]) are
/// recomputed on every call — they fail fast, and caching them would mask
/// capacity-dependent behavior if the wrapped compiler is reconfigured.
pub struct CachedCompiler<C> {
    inner: C,
    cache: CompileCache,
}

impl<C: Compiler> CachedCompiler<C> {
    /// Wraps `inner` over `cache`.
    pub fn new(inner: C, cache: CompileCache) -> Self {
        Self { inner, cache }
    }

    /// The shared cache.
    pub fn cache(&self) -> &CompileCache {
        &self.cache
    }

    /// Unwraps the inner compiler.
    pub fn into_inner(self) -> C {
        self.inner
    }
}

impl<C: Compiler> Compiler for CachedCompiler<C> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn config_tokens(&self, fp: &mut Fingerprint) {
        self.inner.config_tokens(fp);
    }

    fn fingerprint(&self) -> u64 {
        self.inner.fingerprint()
    }

    fn compile(&self, staged: &StagedCircuit) -> Result<CompileOutput, CompileError> {
        let key = CacheKey::compute(&self.inner, staged);
        if let Some(out) = self.cache.get(key) {
            return Ok(out);
        }
        let out = self.inner.compile(staged)?;
        self.cache.put(key, &out);
        Ok(out)
    }
}

/// Shared helpers for this crate's unit tests.
#[cfg(test)]
pub(crate) mod test_support {
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;
    use zac_core::CompileOutput;
    use zac_fidelity::{evaluate_neutral_atom, ExecutionSummary, NeutralAtomParams};

    /// A unique, collision-free scratch directory under the system temp dir.
    pub fn temp_cache_dir(tag: &str) -> PathBuf {
        static SEQ: AtomicUsize = AtomicUsize::new(0);
        std::env::temp_dir().join(format!(
            "zac-cache-test-{}-{}-{}",
            std::process::id(),
            tag,
            SEQ.fetch_add(1, Ordering::Relaxed)
        ))
    }

    /// A small deterministic output distinguishable by `tag`/`g1`.
    pub fn sample_output(name: &str, g1: usize) -> CompileOutput {
        let summary = ExecutionSummary {
            name: name.into(),
            num_qubits: 2,
            duration_us: 10.0 + g1 as f64,
            g1,
            g2: 1,
            n_exc: 0,
            n_tran: 2,
            idle_us: vec![1.0, 2.5],
        };
        let report = evaluate_neutral_atom(&summary, &NeutralAtomParams::reference());
        CompileOutput::new(summary, report, Duration::from_micros(321), None)
            .with_phases(Duration::from_micros(200), Duration::from_micros(121))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{sample_output, temp_cache_dir};
    use std::sync::atomic::{AtomicUsize, Ordering as AtomicOrdering};
    use zac_arch::Architecture;
    use zac_circuit::{bench_circuits, preprocess};
    use zac_core::Zac;

    /// Counts `compile` calls reaching the wrapped compiler.
    struct Counting<C> {
        inner: C,
        calls: AtomicUsize,
    }

    impl<C> Counting<C> {
        fn new(inner: C) -> Self {
            Self { inner, calls: AtomicUsize::new(0) }
        }
    }

    impl<C: Compiler> Compiler for Counting<C> {
        fn name(&self) -> &str {
            self.inner.name()
        }

        fn config_tokens(&self, fp: &mut Fingerprint) {
            self.inner.config_tokens(fp);
        }

        fn compile(&self, staged: &StagedCircuit) -> Result<CompileOutput, CompileError> {
            self.calls.fetch_add(1, AtomicOrdering::Relaxed);
            self.inner.compile(staged)
        }
    }

    fn quick_zac() -> Zac {
        let mut config = zac_core::ZacConfig::default();
        config.placement.sa_iterations = 100;
        Zac::with_config(Architecture::reference(), config)
    }

    #[test]
    fn hit_skips_inner_compile_and_preserves_output() {
        let cache = CompileCache::in_memory(64);
        let zac = CachedCompiler::new(Counting::new(quick_zac()), cache.clone());
        let staged = preprocess(&bench_circuits::ghz(10));
        let cold = zac.compile(&staged).unwrap();
        let warm = zac.compile(&staged).unwrap();
        assert_eq!(zac.into_inner().calls.into_inner(), 1, "second call served from cache");
        assert!(!cold.from_cache && warm.from_cache);
        assert_eq!(warm.summary, cold.summary);
        assert_eq!(warm.report, cold.report);
        assert_eq!(warm.counts, cold.counts);
        assert_eq!(warm.compile_time, cold.compile_time, "original compile time reported");
        assert_eq!(
            warm.program.as_ref().map(|p| p.to_json().unwrap()),
            cold.program.as_ref().map(|p| p.to_json().unwrap()),
            "ZAIR program survives the round trip bit-identically"
        );
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.insertions), (1, 1, 1));
    }

    #[test]
    fn distinct_circuits_and_compilers_do_not_collide() {
        let cache = CompileCache::in_memory(64);
        let full = CachedCompiler::new(quick_zac(), cache.clone());
        let vanilla = CachedCompiler::new(
            Zac::with_config(Architecture::reference(), zac_core::ZacConfig::vanilla()),
            cache.clone(),
        );
        let a = preprocess(&bench_circuits::ghz(10));
        let b = preprocess(&bench_circuits::bv(10, 9));
        let fa = full.compile(&a).unwrap();
        let fb = full.compile(&b).unwrap();
        let va = vanilla.compile(&a).unwrap();
        assert_eq!(cache.stats().insertions, 3, "three distinct cells, three entries");
        assert_ne!(fa.summary.name, fb.summary.name);
        // Same circuit, different config: cached separately, and the
        // vanilla arm really is a different compilation.
        assert!(!va.from_cache);
        assert_eq!(full.compile(&a).unwrap().report, fa.report);
    }

    #[test]
    fn cache_is_shared_across_clones_and_threads() {
        let cache = CompileCache::in_memory(256);
        let staged = preprocess(&bench_circuits::ghz(8));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let cache = cache.clone();
                let staged = &staged;
                scope.spawn(move || {
                    let zac = CachedCompiler::new(quick_zac(), cache);
                    for _ in 0..3 {
                        zac.compile(staged).unwrap();
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.lookups(), 12);
        assert!(stats.hits >= 8, "at least the later lookups hit: {stats:?}");
        assert_eq!(stats.resident, 1);
    }

    #[test]
    fn errors_are_not_cached() {
        let cache = CompileCache::in_memory(8);
        let counting = Counting::new(Zac::new(Architecture::arch1_small()));
        let zac = CachedCompiler::new(counting, cache.clone());
        let mut big = zac_circuit::Circuit::new("big", 121);
        big.cz(0, 1);
        let staged = preprocess(&big);
        assert!(zac.compile(&staged).is_err());
        assert!(zac.compile(&staged).is_err());
        assert_eq!(zac.into_inner().calls.into_inner(), 2, "errors recomputed every call");
        assert_eq!(cache.stats().insertions, 0);
    }

    #[test]
    fn disk_layer_warms_a_fresh_cache() {
        let dir = temp_cache_dir("warm-restart");
        let staged = preprocess(&bench_circuits::ghz(9));
        let cold_report;
        {
            let cache = CompileCache::with_disk(32, &dir).unwrap();
            let zac = CachedCompiler::new(quick_zac(), cache.clone());
            cold_report = zac.compile(&staged).unwrap().report;
            assert_eq!(cache.stats().disk_writes, 1);
        }
        // A brand-new process-like cache over the same directory.
        let cache = CompileCache::with_disk(32, &dir).unwrap();
        let zac = CachedCompiler::new(Counting::new(quick_zac()), cache.clone());
        let warm = zac.compile(&staged).unwrap();
        assert_eq!(zac.into_inner().calls.into_inner(), 0, "served entirely from disk");
        assert!(warm.from_cache);
        assert_eq!(warm.report, cold_report);
        let stats = cache.stats();
        assert_eq!((stats.disk_hits, stats.hits, stats.resident), (1, 0, 1));
        // A second lookup now hits memory (the disk hit was promoted).
        assert!(cache.get(CacheKey::compute(&quick_zac(), &staged)).is_some());
        assert_eq!(cache.stats().hits, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stats_track_evictions() {
        let cache = CompileCache::in_memory(lru::SHARDS); // one slot per shard
        for i in 0..4 {
            // Keys folded into one shard.
            let key = CacheKey { circuit: (i * lru::SHARDS) as u64, compiler: 0 };
            cache.put(key, &sample_output("s", i));
        }
        let stats = cache.stats();
        assert_eq!(stats.insertions, 4);
        assert_eq!(stats.evictions, 3);
        assert_eq!(stats.resident, 1);
    }

    #[test]
    fn key_file_stem_is_stable_hex() {
        let key = CacheKey { circuit: 0xABC, compiler: 0x1 };
        assert_eq!(key.file_stem(), "0000000000000abc-0000000000000001");
    }

    /// Regression (PR 7): warm rows must report the place/schedule phase
    /// split — a memory hit may not drop `PhaseTimings`.
    #[test]
    fn memory_hit_preserves_phase_timings() {
        let cache = CompileCache::in_memory(64);
        let zac = CachedCompiler::new(quick_zac(), cache);
        let staged = preprocess(&bench_circuits::ghz(10));
        let cold = zac.compile(&staged).unwrap();
        let phases = cold.phases.expect("a Zac compile reports phase timings");
        let warm = zac.compile(&staged).unwrap();
        assert!(warm.from_cache);
        assert_eq!(warm.phases, Some(phases), "memory hit kept the phase split");
    }

    /// Regression (PR 7): the phase split survives the disk envelope too
    /// (persisted via `opt_fields`, restored on load), so a fresh process
    /// warming from disk still reports phases.
    #[test]
    fn disk_hit_preserves_phase_timings() {
        let dir = temp_cache_dir("phase-roundtrip");
        let staged = preprocess(&bench_circuits::ghz(9));
        let phases;
        {
            let cache = CompileCache::with_disk(32, &dir).unwrap();
            let zac = CachedCompiler::new(quick_zac(), cache);
            phases = zac.compile(&staged).unwrap().phases.expect("phases on the cold compile");
        }
        let cache = CompileCache::with_disk(32, &dir).unwrap();
        let zac = CachedCompiler::new(Counting::new(quick_zac()), cache.clone());
        let warm = zac.compile(&staged).unwrap();
        assert_eq!(zac.into_inner().calls.into_inner(), 0, "served entirely from disk");
        assert_eq!(warm.phases, Some(phases), "disk envelope round-tripped the phase split");
        // The promoted in-memory copy keeps them as well.
        let remembered = cache.get(CacheKey::compute(&quick_zac(), &staged)).unwrap();
        assert_eq!(remembered.phases, Some(phases));
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Regression (PR 7): hit-rate reporting must not divide by zero.
    #[test]
    fn hit_rate_is_zero_on_an_untouched_cache() {
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
        let cache = CompileCache::in_memory(8);
        let stats = cache.stats();
        assert_eq!(stats.lookups(), 0);
        assert_eq!(stats.hit_rate(), 0.0, "untouched cache reports 0.0, not NaN");
        assert!(stats.hit_rate().is_finite());
    }

    #[test]
    fn hit_rate_counts_all_layers_once_touched() {
        // Single-shard usage: every key folds into shard 0, so one shard
        // sees all traffic and the other fifteen stay empty.
        let cache = CompileCache::in_memory(lru::SHARDS);
        let key = CacheKey { circuit: 0, compiler: 0 };
        assert!(cache.get(key).is_none());
        assert_eq!(cache.stats().hit_rate(), 0.0, "all-miss history is 0.0");
        cache.put(key, &sample_output("s", 1));
        assert!(cache.get(key).is_some());
        let stats = cache.stats();
        assert_eq!(stats.lookups(), 2);
        assert_eq!(stats.hit_rate(), 0.5);
    }
}
