//! The persistent layer: one JSON file per cache entry.
//!
//! Entries are written atomically (write to a `.tmp` sibling, then rename
//! into place) so a concurrent reader — another process sharing the cache
//! directory, or a crashed writer's successor — never observes a torn file.
//! Reads are lazy: the disk is only consulted on an in-memory miss, and
//! anything unreadable (corrupt JSON, wrong format version, fingerprint
//! mismatch from a renamed file) is treated as a miss, never an error.
//!
//! Since envelope v2 the entry body *is* the versioned [`CompileOutput`]
//! document from `zac_core::output_json` — the same schema the serving
//! layer streams to clients — wrapped with the cache key's fingerprints.
//! One schema, one golden lock, no drift between what the cache persists
//! and what the service returns.

use crate::CacheKey;
use serde::{DeError, Deserialize, ObjectView, Serialize, Value};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use zac_core::CompileOutput;

/// On-disk format version. Bump whenever the entry envelope *or* the
/// fingerprint scheme (`zac_circuit::Fingerprint`'s golden tests) changes;
/// entries with any other version are ignored as misses.
///
/// v2 replaced the inlined summary/report/timing fields with the embedded
/// [`CompileOutput`] envelope; v1 entries are treated as misses and
/// recompiled, which is the cache's normal degradation mode.
pub const DISK_FORMAT_VERSION: u64 = 2;

/// The serialized envelope of one cache entry.
///
/// Fingerprints are stored as 16-digit hex strings: the stand-in JSON
/// number model is `f64`-backed, which cannot represent all `u64` values
/// exactly (> 2^53), and a silently rounded fingerprint would corrupt
/// lookups.
struct DiskEntry {
    version: u64,
    circuit_fp: String,
    compiler_fp: String,
    output: CompileOutput,
}

impl Serialize for DiskEntry {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("version".into(), self.version.to_value()),
            ("circuit_fp".into(), self.circuit_fp.to_value()),
            ("compiler_fp".into(), self.compiler_fp.to_value()),
            ("output".into(), self.output.to_value()),
        ])
    }
}

impl Deserialize for DiskEntry {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let obj = ObjectView::new(v)?;
        Ok(Self {
            version: obj.field("version")?,
            circuit_fp: obj.field("circuit_fp")?,
            compiler_fp: obj.field("compiler_fp")?,
            output: obj.field("output")?,
        })
    }
}

/// The disk layer of a `CompileCache`: a directory of JSON entries.
pub struct DiskLayer {
    dir: PathBuf,
}

impl DiskLayer {
    /// Opens (creating if needed) a cache directory.
    ///
    /// # Errors
    ///
    /// [`io::Error`] if the directory cannot be created.
    pub fn new(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(Self { dir })
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of `key`'s entry file.
    pub fn entry_path(&self, key: CacheKey) -> PathBuf {
        self.dir.join(format!("{}.json", key.file_stem()))
    }

    /// Loads `key`'s entry, if present and intact. Any failure — missing
    /// file, corrupt JSON, version or fingerprint mismatch — is a miss.
    pub fn load(&self, key: CacheKey) -> Option<CompileOutput> {
        let text = fs::read_to_string(self.entry_path(key)).ok()?;
        let entry: DiskEntry = serde_json::from_str(&text).ok()?;
        if entry.version != DISK_FORMAT_VERSION
            || entry.circuit_fp != format!("{:016x}", key.circuit)
            || entry.compiler_fp != format!("{:016x}", key.compiler)
        {
            return None;
        }
        let mut out = entry.output;
        // The disk layer hands back pristine outputs; the in-memory layer
        // owns the `from_cache` marking on hits.
        out.from_cache = false;
        Some(out)
    }

    /// Persists `key → output` atomically (temp file + rename).
    ///
    /// # Errors
    ///
    /// [`io::Error`] on filesystem failure, or `InvalidData` if the output
    /// contains non-finite numbers (JSON cannot represent them; such an
    /// output is an upstream compiler bug and must not poison the cache).
    pub fn store(&self, key: CacheKey, output: &CompileOutput) -> io::Result<()> {
        let mut pristine = output.clone();
        pristine.from_cache = false;
        let entry = DiskEntry {
            version: DISK_FORMAT_VERSION,
            circuit_fp: format!("{:016x}", key.circuit),
            compiler_fp: format!("{:016x}", key.compiler),
            output: pristine,
        };
        let value = entry.to_value();
        if !value.all_numbers_finite() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("cache entry for `{}` contains non-finite numbers", output.summary.name),
            ));
        }
        let json = serde_json::to_string(&value)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let path = self.entry_path(key);
        // Unique per writer (pid + in-process counter): two threads or
        // processes racing on the same key must not truncate each other's
        // temp file mid-write, or the rename would publish a torn entry.
        static WRITE_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let tmp = path.with_extension(format!(
            "json.tmp.{}.{}",
            std::process::id(),
            WRITE_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ));
        // On any failure past this point remove the temp file: its name is
        // unique per write, so an orphan would never be overwritten and a
        // shared cache directory would accumulate garbage across runs.
        fs::write(&tmp, json).and_then(|()| fs::rename(&tmp, &path)).inspect_err(|_| {
            fs::remove_file(&tmp).ok();
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{sample_output, temp_cache_dir};

    fn key() -> CacheKey {
        CacheKey { circuit: 0xdead_beef_0123_4567, compiler: 0xfeed_face_89ab_cdef }
    }

    #[test]
    fn roundtrips_output_exactly() {
        let dir = temp_cache_dir("disk-roundtrip");
        let layer = DiskLayer::new(&dir).unwrap();
        let out = sample_output("rt", 3);
        layer.store(key(), &out).unwrap();
        let back = layer.load(key()).expect("entry loads");
        assert_eq!(back.summary, out.summary);
        assert_eq!(back.report, out.report);
        assert_eq!(back.counts, out.counts);
        assert_eq!(back.compile_time, out.compile_time);
        assert_eq!(back.phases, out.phases, "phase breakdown round-trips");
        assert!(!back.from_cache, "disk layer returns pristine outputs");
        fs::remove_dir_all(&dir).ok();
    }

    /// The entry body is the shared `CompileOutput` envelope verbatim, so
    /// what the cache persists and what the service streams never drift.
    #[test]
    fn entry_embeds_the_compile_output_envelope() {
        let dir = temp_cache_dir("disk-envelope");
        let layer = DiskLayer::new(&dir).unwrap();
        let out = sample_output("env", 2);
        layer.store(key(), &out).unwrap();
        let text = fs::read_to_string(layer.entry_path(key())).unwrap();
        let mut pristine = out.clone();
        pristine.from_cache = false;
        let embedded = format!("\"output\":{}", pristine.to_json().unwrap());
        assert!(text.starts_with(&format!("{{\"version\":{DISK_FORMAT_VERSION},")), "{text}");
        assert!(text.ends_with(&format!("{embedded}}}")), "{text}");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn no_tmp_files_left_behind() {
        let dir = temp_cache_dir("disk-tmp");
        let layer = DiskLayer::new(&dir).unwrap();
        layer.store(key(), &sample_output("t", 1)).unwrap();
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(Result::ok)
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_version_mismatch_and_absence_are_misses() {
        let dir = temp_cache_dir("disk-miss");
        let layer = DiskLayer::new(&dir).unwrap();
        assert!(layer.load(key()).is_none(), "absent file");

        fs::write(layer.entry_path(key()), "{ not json").unwrap();
        assert!(layer.load(key()).is_none(), "corrupt file");

        layer.store(key(), &sample_output("v", 1)).unwrap();
        let text = fs::read_to_string(layer.entry_path(key())).unwrap();
        // The outer (first) version tag is the disk envelope's; the inner
        // one belongs to the embedded CompileOutput document.
        fs::write(layer.entry_path(key()), text.replacen("\"version\":2", "\"version\":999", 1))
            .unwrap();
        assert!(layer.load(key()).is_none(), "future version");

        // Pre-v2 (v1) entries are misses too — the v1 body shape no longer
        // parses, and even a well-formed v1 tag fails the version gate.
        fs::write(layer.entry_path(key()), text.replacen("\"version\":2", "\"version\":1", 1))
            .unwrap();
        assert!(layer.load(key()).is_none(), "v1 entry");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn renamed_entry_fails_fingerprint_check() {
        let dir = temp_cache_dir("disk-rename");
        let layer = DiskLayer::new(&dir).unwrap();
        layer.store(key(), &sample_output("mv", 1)).unwrap();
        let other = CacheKey { circuit: 1, compiler: 2 };
        fs::rename(layer.entry_path(key()), layer.entry_path(other)).unwrap();
        assert!(layer.load(other).is_none(), "stored fingerprints beat the filename");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn non_finite_outputs_are_rejected() {
        let dir = temp_cache_dir("disk-nan");
        let layer = DiskLayer::new(&dir).unwrap();
        let mut out = sample_output("nan", 1);
        out.summary.duration_us = f64::NAN;
        let err = layer.store(key(), &out).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(layer.load(key()).is_none());
        fs::remove_dir_all(&dir).ok();
    }
}
