//! The persistent layer: one JSON file per cache entry.
//!
//! Entries are written atomically (write to a `.tmp` sibling, then rename
//! into place) so a concurrent reader — another process sharing the cache
//! directory, or a crashed writer's successor — never observes a torn file.
//! Reads are lazy: the disk is only consulted on an in-memory miss, and
//! anything unreadable is treated as a miss, never an error. [`LoadOutcome`]
//! classifies the misses: a file that no longer *parses* (torn, truncated,
//! or garbage — something atomic rename should have made impossible, so
//! likely bit rot or an interrupted foreign writer) is **quarantined**,
//! renamed to `*.quarantine` so it is inspected once, never re-parsed on
//! every lookup; version or fingerprint mismatches are plain misses (the
//! cache's normal degradation mode — old formats and renamed files are
//! well-formed, just not usable).
//!
//! Writes retry transient failures a bounded number of times with a small
//! deterministic jittered backoff; opening a directory runs a recovery scan
//! that reports quarantined entries and sweeps orphaned temp files from
//! crashed writers. Both paths carry [`fault_point!`](zac_telemetry::fault_point)s
//! (`cache.disk.read`, `cache.disk.write`) so the failure handling is
//! exercised deterministically under an armed `ZAC_FAULTS` plan.
//!
//! Since envelope v2 the entry body *is* the versioned [`CompileOutput`]
//! document from `zac_core::output_json` — the same schema the serving
//! layer streams to clients — wrapped with the cache key's fingerprints.
//! One schema, one golden lock, no drift between what the cache persists
//! and what the service returns.

use crate::CacheKey;
use serde::{DeError, Deserialize, ObjectView, Serialize, Value};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use zac_core::CompileOutput;

/// On-disk format version. Bump whenever the entry envelope *or* the
/// fingerprint scheme (`zac_circuit::Fingerprint`'s golden tests) changes;
/// entries with any other version are ignored as misses.
///
/// v2 replaced the inlined summary/report/timing fields with the embedded
/// [`CompileOutput`] envelope; v1 entries are treated as misses and
/// recompiled, which is the cache's normal degradation mode.
pub const DISK_FORMAT_VERSION: u64 = 2;

/// The serialized envelope of one cache entry.
///
/// Fingerprints are stored as 16-digit hex strings: the stand-in JSON
/// number model is `f64`-backed, which cannot represent all `u64` values
/// exactly (> 2^53), and a silently rounded fingerprint would corrupt
/// lookups.
struct DiskEntry {
    version: u64,
    circuit_fp: String,
    compiler_fp: String,
    output: CompileOutput,
}

impl Serialize for DiskEntry {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("version".into(), self.version.to_value()),
            ("circuit_fp".into(), self.circuit_fp.to_value()),
            ("compiler_fp".into(), self.compiler_fp.to_value()),
            ("output".into(), self.output.to_value()),
        ])
    }
}

impl Deserialize for DiskEntry {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let obj = ObjectView::new(v)?;
        Ok(Self {
            version: obj.field("version")?,
            circuit_fp: obj.field("circuit_fp")?,
            compiler_fp: obj.field("compiler_fp")?,
            output: obj.field("output")?,
        })
    }
}

/// How a disk lookup resolved — the classification behind `CompileCache`'s
/// `quarantined` / `disk_errors` counters.
#[derive(Debug)]
pub enum LoadOutcome {
    /// The entry was present, intact, and keyed correctly.
    Hit(Box<CompileOutput>),
    /// No usable entry: absent file, or a well-formed entry whose version
    /// or fingerprints do not match (normal degradation, recompile).
    Miss,
    /// The file existed but did not parse as JSON; it has been renamed to
    /// `*.quarantine` and the lookup proceeds as a clean miss.
    Quarantined,
    /// The read itself failed (filesystem error or an injected
    /// `cache.disk.read` fault); a miss, but counted as a disk error.
    ReadError,
}

/// What [`DiskLayer::new`]'s recovery scan found in the directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecoveryReport {
    /// `*.quarantine` files present (from this or earlier runs) — corrupt
    /// entries set aside for inspection.
    pub quarantined: usize,
    /// Orphaned `*.tmp.*` files swept away (debris from crashed writers).
    pub tmp_removed: usize,
}

/// Transient-write retry budget: 1 initial attempt + 2 retries.
const STORE_ATTEMPTS: u32 = 3;

/// The disk layer of a `CompileCache`: a directory of JSON entries.
pub struct DiskLayer {
    dir: PathBuf,
    recovery: RecoveryReport,
}

impl DiskLayer {
    /// Opens (creating if needed) a cache directory, then runs a recovery
    /// scan: orphaned temp files from crashed writers are removed, and
    /// quarantined entries are counted into the [`RecoveryReport`]
    /// (available via [`recovery`](Self::recovery)).
    ///
    /// # Errors
    ///
    /// [`io::Error`] if the directory cannot be created or scanned.
    pub fn new(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let mut recovery = RecoveryReport::default();
        for entry in fs::read_dir(&dir)? {
            let Ok(entry) = entry else { continue };
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name.ends_with(".quarantine") {
                recovery.quarantined += 1;
            } else if name.contains(".tmp.") {
                // Temp names are unique per (pid, write): anything still
                // here belongs to a writer that died mid-store.
                if fs::remove_file(entry.path()).is_ok() {
                    recovery.tmp_removed += 1;
                }
            }
        }
        Ok(Self { dir, recovery })
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// What the opening recovery scan found.
    pub fn recovery(&self) -> RecoveryReport {
        self.recovery
    }

    /// Path of `key`'s entry file.
    pub fn entry_path(&self, key: CacheKey) -> PathBuf {
        self.dir.join(format!("{}.json", key.file_stem()))
    }

    /// Loads `key`'s entry, if present and intact (the [`LoadOutcome::Miss`]
    /// folding of [`load_classified`](Self::load_classified)).
    pub fn load(&self, key: CacheKey) -> Option<CompileOutput> {
        match self.load_classified(key) {
            LoadOutcome::Hit(out) => Some(*out),
            _ => None,
        }
    }

    /// Loads `key`'s entry and says *how* the lookup resolved. Never an
    /// error: every failure mode degrades to a (classified) miss, and a
    /// file that fails to parse is quarantined on the spot so the corrupt
    /// bytes are kept for inspection without being re-read on every lookup.
    pub fn load_classified(&self, key: CacheKey) -> LoadOutcome {
        let path = self.entry_path(key);
        if zac_telemetry::fault_point!("cache.disk.read").is_some() {
            return LoadOutcome::ReadError;
        }
        // Raw bytes, not `read_to_string`: garbage that isn't UTF-8 is
        // *corruption* (quarantine below), not a read error — only the read
        // itself failing counts as one.
        let bytes = match fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return LoadOutcome::Miss,
            Err(_) => return LoadOutcome::ReadError,
        };
        let entry = std::str::from_utf8(&bytes)
            .ok()
            .and_then(|text| serde_json::from_str::<DiskEntry>(text).ok());
        let Some(entry) = entry else {
            // Torn, truncated, or garbage: set the bytes aside. If the
            // rename fails (another reader quarantined it first, or the
            // filesystem is unhappy) the entry is simply gone next lookup.
            fs::rename(&path, path.with_extension("quarantine")).ok();
            return LoadOutcome::Quarantined;
        };
        if entry.version != DISK_FORMAT_VERSION
            || entry.circuit_fp != format!("{:016x}", key.circuit)
            || entry.compiler_fp != format!("{:016x}", key.compiler)
        {
            return LoadOutcome::Miss;
        }
        let mut out = entry.output;
        // The disk layer hands back pristine outputs; the in-memory layer
        // owns the `from_cache` marking on hits.
        out.from_cache = false;
        LoadOutcome::Hit(Box::new(out))
    }

    /// Persists `key → output` atomically (temp file + rename), retrying
    /// transient failures up to twice with a small deterministic jittered
    /// backoff. Returns how many retries were needed (0 on a clean write).
    ///
    /// # Errors
    ///
    /// [`io::Error`] once the retry budget is exhausted, or immediately
    /// with `InvalidData` if the output contains non-finite numbers (JSON
    /// cannot represent them; such an output is an upstream compiler bug
    /// and must not poison the cache — retrying cannot help).
    pub fn store(&self, key: CacheKey, output: &CompileOutput) -> io::Result<u64> {
        let mut pristine = output.clone();
        pristine.from_cache = false;
        let entry = DiskEntry {
            version: DISK_FORMAT_VERSION,
            circuit_fp: format!("{:016x}", key.circuit),
            compiler_fp: format!("{:016x}", key.compiler),
            output: pristine,
        };
        let value = entry.to_value();
        if !value.all_numbers_finite() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("cache entry for `{}` contains non-finite numbers", output.summary.name),
            ));
        }
        let json = serde_json::to_string(&value)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;

        let mut retries = 0u64;
        loop {
            let err = match self.write_once(key, &json) {
                Ok(()) => return Ok(retries),
                Err(e) => e,
            };
            // Deterministic failures (non-finite data is caught above, but
            // e.g. a read-only filesystem also returns the same error every
            // time) still burn the budget — the classification a kernel
            // gives us is not reliable enough to special-case, and two
            // extra millisecond-scale attempts are cheap.
            if err.kind() == io::ErrorKind::InvalidData || retries + 1 >= u64::from(STORE_ATTEMPTS)
            {
                return Err(err);
            }
            retries += 1;
            std::thread::sleep(backoff(key, retries));
        }
    }

    /// One atomic write attempt: temp file + rename, temp removed on error.
    fn write_once(&self, key: CacheKey, json: &str) -> io::Result<()> {
        if let Some(e) = zac_telemetry::fault_point!("cache.disk.write") {
            return Err(e);
        }
        let path = self.entry_path(key);
        // Unique per writer (pid + in-process counter): two threads or
        // processes racing on the same key must not truncate each other's
        // temp file mid-write, or the rename would publish a torn entry.
        static WRITE_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let tmp = path.with_extension(format!(
            "json.tmp.{}.{}",
            std::process::id(),
            WRITE_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ));
        // On any failure past this point remove the temp file: its name is
        // unique per write, so an orphan would never be overwritten and a
        // shared cache directory would accumulate garbage across runs.
        fs::write(&tmp, json).and_then(|()| fs::rename(&tmp, &path)).inspect_err(|_| {
            fs::remove_file(&tmp).ok();
        })
    }
}

/// Retry backoff: ~0.5 ms doubling per attempt, jittered by a hash of
/// (key, attempt) so concurrent writers racing on one entry spread out —
/// deterministically, keeping the no-RNG-in-tree invariant. Shared with the
/// segment tier's append retry loop.
pub(crate) fn backoff(key: CacheKey, attempt: u64) -> std::time::Duration {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for word in [key.circuit, key.compiler, attempt] {
        for b in word.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    let base_us = 500u64 << (attempt - 1).min(4);
    std::time::Duration::from_micros(base_us + h % base_us)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{sample_output, temp_cache_dir};

    fn key() -> CacheKey {
        CacheKey { circuit: 0xdead_beef_0123_4567, compiler: 0xfeed_face_89ab_cdef }
    }

    #[test]
    fn roundtrips_output_exactly() {
        let dir = temp_cache_dir("disk-roundtrip");
        let layer = DiskLayer::new(&dir).unwrap();
        let out = sample_output("rt", 3);
        layer.store(key(), &out).unwrap();
        let back = layer.load(key()).expect("entry loads");
        assert_eq!(back.summary, out.summary);
        assert_eq!(back.report, out.report);
        assert_eq!(back.counts, out.counts);
        assert_eq!(back.compile_time, out.compile_time);
        assert_eq!(back.phases, out.phases, "phase breakdown round-trips");
        assert!(!back.from_cache, "disk layer returns pristine outputs");
        fs::remove_dir_all(&dir).ok();
    }

    /// The entry body is the shared `CompileOutput` envelope verbatim, so
    /// what the cache persists and what the service streams never drift.
    #[test]
    fn entry_embeds_the_compile_output_envelope() {
        let dir = temp_cache_dir("disk-envelope");
        let layer = DiskLayer::new(&dir).unwrap();
        let out = sample_output("env", 2);
        layer.store(key(), &out).unwrap();
        let text = fs::read_to_string(layer.entry_path(key())).unwrap();
        let mut pristine = out.clone();
        pristine.from_cache = false;
        let embedded = format!("\"output\":{}", pristine.to_json().unwrap());
        assert!(text.starts_with(&format!("{{\"version\":{DISK_FORMAT_VERSION},")), "{text}");
        assert!(text.ends_with(&format!("{embedded}}}")), "{text}");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn no_tmp_files_left_behind() {
        let dir = temp_cache_dir("disk-tmp");
        let layer = DiskLayer::new(&dir).unwrap();
        layer.store(key(), &sample_output("t", 1)).unwrap();
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(Result::ok)
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_version_mismatch_and_absence_are_misses() {
        let dir = temp_cache_dir("disk-miss");
        let layer = DiskLayer::new(&dir).unwrap();
        assert!(layer.load(key()).is_none(), "absent file");

        fs::write(layer.entry_path(key()), "{ not json").unwrap();
        assert!(layer.load(key()).is_none(), "corrupt file");

        layer.store(key(), &sample_output("v", 1)).unwrap();
        let text = fs::read_to_string(layer.entry_path(key())).unwrap();
        // The outer (first) version tag is the disk envelope's; the inner
        // one belongs to the embedded CompileOutput document.
        fs::write(layer.entry_path(key()), text.replacen("\"version\":2", "\"version\":999", 1))
            .unwrap();
        assert!(layer.load(key()).is_none(), "future version");

        // Pre-v2 (v1) entries are misses too — the v1 body shape no longer
        // parses, and even a well-formed v1 tag fails the version gate.
        fs::write(layer.entry_path(key()), text.replacen("\"version\":2", "\"version\":1", 1))
            .unwrap();
        assert!(layer.load(key()).is_none(), "v1 entry");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn renamed_entry_fails_fingerprint_check() {
        let dir = temp_cache_dir("disk-rename");
        let layer = DiskLayer::new(&dir).unwrap();
        layer.store(key(), &sample_output("mv", 1)).unwrap();
        let other = CacheKey { circuit: 1, compiler: 2 };
        fs::rename(layer.entry_path(key()), layer.entry_path(other)).unwrap();
        assert!(layer.load(other).is_none(), "stored fingerprints beat the filename");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_entries_are_quarantined_not_reparsed() {
        let dir = temp_cache_dir("disk-quarantine");
        let layer = DiskLayer::new(&dir).unwrap();
        fs::write(layer.entry_path(key()), "{\"version\":2,\"circ").unwrap();

        assert!(matches!(layer.load_classified(key()), LoadOutcome::Quarantined));
        let quarantine = layer.entry_path(key()).with_extension("quarantine");
        assert!(quarantine.exists(), "corrupt bytes are set aside");
        assert!(!layer.entry_path(key()).exists(), "the entry slot is freed");
        // The next lookup is a plain miss — the corrupt file is gone.
        assert!(matches!(layer.load_classified(key()), LoadOutcome::Miss));

        // A fresh store reclaims the slot; the quarantined bytes survive.
        layer.store(key(), &sample_output("q", 1)).unwrap();
        assert!(matches!(layer.load_classified(key()), LoadOutcome::Hit(_)));
        assert!(quarantine.exists());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recovery_scan_counts_quarantine_and_sweeps_orphan_temps() {
        let dir = temp_cache_dir("disk-recovery");
        {
            let layer = DiskLayer::new(&dir).unwrap();
            assert_eq!(layer.recovery(), RecoveryReport::default(), "fresh directory");
            layer.store(key(), &sample_output("r", 1)).unwrap();
        }
        // Simulate a crashed writer and an earlier quarantine.
        fs::write(dir.join("0000000000000001-0000000000000002.json.tmp.999.0"), "torn").unwrap();
        fs::write(dir.join("dead-beef.quarantine"), "garbage").unwrap();

        let layer = DiskLayer::new(&dir).unwrap();
        assert_eq!(layer.recovery(), RecoveryReport { quarantined: 1, tmp_removed: 1 });
        assert!(!dir.join("0000000000000001-0000000000000002.json.tmp.999.0").exists());
        assert!(layer.load(key()).is_some(), "intact entries survive recovery");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn non_finite_outputs_are_rejected() {
        let dir = temp_cache_dir("disk-nan");
        let layer = DiskLayer::new(&dir).unwrap();
        let mut out = sample_output("nan", 1);
        out.summary.duration_us = f64::NAN;
        let err = layer.store(key(), &out).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(layer.load(key()).is_none());
        fs::remove_dir_all(&dir).ok();
    }
}
