//! The segment-log disk tier: an append-only record log with an in-memory
//! index.
//!
//! The per-file layer ([`crate::disk`]) pays one open + one JSON tree parse
//! per entry, which is fine for a lazy single-process cache and a bottleneck
//! for a fleet: N serve workers rehydrating a corpus-scale store spend
//! almost all of their wall clock in per-file loads. This tier is the
//! ROADMAP's "compacted segment files / append-only log with in-memory
//! index" design:
//!
//! * **Records** are framed with a fixed 76-byte ASCII header —
//!   `ZSR1 <len:8x> <crc:8x> <lsn:16x> <kind> <circuit:16x> <compiler:16x> `
//!   — followed by the payload and a trailing newline. The payload is the
//!   compact binary [`CompileOutput`] encoding (`zac_core::output_bin`),
//!   which decodes ~an order of magnitude faster than the JSON envelope;
//!   that, plus one sequential scan instead of per-entry opens, is where
//!   the cold-open speedup comes from. Kind `P` is a put, `T` a tombstone.
//! * **Segments**: each writer appends to its own active segment
//!   (`seg-<seq>-p<pid>-<n>.active.log`), sealed by rename to `.seg.log`
//!   once it exceeds [`SegmentConfig::seal_bytes`]. Writers never share an
//!   append file, so no write interleaving is possible; readers validate
//!   every record's length, trailing newline, and checksum before indexing
//!   it, so a concurrently-appended tail is simply not visible until it is
//!   complete — cross-process sharing without torn reads.
//! * **Index**: key → (segment, offset, len, lsn). Records carry a
//!   store-monotonic LSN; the highest LSN wins, so duplicate records from
//!   migration races or compaction are harmless. Lookups that miss the
//!   index refresh it (re-list the directory, scan known segments from
//!   their last indexed offset) so entries appended by *other* processes
//!   become visible on demand.
//! * **Recovery**: a torn final record (crashed writer) fails validation
//!   and scanning stops at the last valid boundary; when the store holds
//!   the advisory `compact.lock` it adopts dead writers' active segments —
//!   truncating the torn tail and sealing the rest — and the truncated
//!   bytes are counted as `recovered_bytes`. The write and read paths run
//!   through the PR 9 `cache.disk.write` / `cache.disk.read` fault points,
//!   so all of this is exercised deterministically under `ZAC_FAULTS`.
//! * **Compaction** happens on open only (background-free): when the
//!   sealed segments carry enough garbage (superseded records), the live
//!   records are rewritten — same LSNs — into one fresh sealed segment and
//!   the old files are deleted. Tombstones are conservatively retained
//!   (they are 77 bytes each and may still shadow records in other
//!   writers' active segments). A crash mid-compaction leaves only a
//!   `*.compacting` temp file, swept at the next open; the source segments
//!   are not touched until the replacement is durably in place.
//! * **Migration**: a key absent from the log but present in the legacy
//!   per-file v2 layer is served from there and re-appended to the log
//!   (migrate-on-read), so an old store opens warm under this tier and
//!   converges to the new format as it is used.

use crate::disk::{backoff, DiskLayer, LoadOutcome};
use crate::CacheKey;
use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use zac_core::{decode_output, encode_output, CompileOutput};
use zac_telemetry::metrics;

/// Leading magic of every record header (the trailing space is part of it).
pub const RECORD_MAGIC: &[u8; 5] = b"ZSR1 ";

/// Fixed header length in bytes; the payload follows immediately and the
/// record ends with one `\n`, so a record spans `HEADER + len + 1` bytes.
pub const RECORD_HEADER_LEN: usize = 76;

/// Framing overhead per record (header + trailing newline).
const RECORD_OVERHEAD: u64 = RECORD_HEADER_LEN as u64 + 1;

/// Tuning knobs for a [`SegmentStore`].
#[derive(Debug, Clone, Copy)]
pub struct SegmentConfig {
    /// Active segments are sealed once they exceed this many bytes.
    pub seal_bytes: u64,
    /// Compaction on open runs only when sealed segments carry at least
    /// this much garbage…
    pub compact_min_garbage: u64,
    /// …and the garbage is at least this fraction of the sealed bytes.
    pub compact_garbage_ratio: f64,
}

impl Default for SegmentConfig {
    fn default() -> Self {
        Self { seal_bytes: 4 << 20, compact_min_garbage: 64 << 10, compact_garbage_ratio: 0.25 }
    }
}

/// Counters for one store (process-global mirrors live in
/// `zac_telemetry::metrics` under `cache.segment.*`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SegmentStats {
    /// Records appended (puts, tombstones, and migrated legacy entries).
    pub appends: u64,
    /// Active segments sealed (size rotation, adoption, and shutdown).
    pub seals: u64,
    /// Garbage records dropped by compaction.
    pub compacted_records: u64,
    /// Bytes of torn tails truncated at adoption plus damaged spans
    /// skipped in sealed segments.
    pub recovered_bytes: u64,
    /// Legacy per-file entries served and re-appended (migrate-on-read).
    pub migrated: u64,
    /// Live index entries.
    pub index_entries: usize,
    /// Segments (sealed + active) currently known to the index.
    pub segments: usize,
}

#[derive(Default)]
struct SegmentCounters {
    appends: AtomicU64,
    seals: AtomicU64,
    compacted_records: AtomicU64,
    recovered_bytes: AtomicU64,
    migrated: AtomicU64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RecordKind {
    Put,
    Tombstone,
}

struct Header {
    len: usize,
    crc: u32,
    lsn: u64,
    kind: RecordKind,
    key: CacheKey,
}

/// One live record's location.
#[derive(Debug, Clone)]
struct IndexEntry {
    stem: String,
    /// Absolute file offset of the *payload* (header already skipped).
    offset: u64,
    len: usize,
    lsn: u64,
}

struct SegmentMeta {
    path: PathBuf,
    sealed: bool,
    /// Byte offset up to which records have been validated and indexed;
    /// refresh resumes here, so completed foreign appends become visible.
    scanned: u64,
    /// Records seen by the scan (live + superseded), for garbage math.
    records: u64,
    /// Cached read handle (independent cursor from any writer's).
    file: Option<File>,
}

struct ActiveSegment {
    stem: String,
    file: File,
    written: u64,
}

struct StoreState {
    index: HashMap<CacheKey, IndexEntry>,
    /// Highest tombstone LSN per deleted key; puts older than this stay
    /// dead even if their segment is scanned later.
    dead: HashMap<CacheKey, u64>,
    segments: HashMap<String, SegmentMeta>,
    active: Option<ActiveSegment>,
    next_seq: u64,
    next_lsn: u64,
}

/// The segment-log store behind [`crate::CompileCache::with_segment_store`].
pub struct SegmentStore {
    dir: PathBuf,
    token: String,
    config: SegmentConfig,
    legacy: DiskLayer,
    state: Mutex<StoreState>,
    stats: SegmentCounters,
}

/// Transient-append retry budget, mirroring the per-file layer.
const APPEND_ATTEMPTS: u32 = 3;

fn crc32(bytes: &[u8]) -> u32 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h ^ (h >> 32)) as u32
}

fn frame_record(lsn: u64, kind: RecordKind, key: CacheKey, payload: &[u8]) -> Vec<u8> {
    let kind = match kind {
        RecordKind::Put => 'P',
        RecordKind::Tombstone => 'T',
    };
    let mut buf = format!(
        "ZSR1 {:08x} {:08x} {:016x} {kind} {:016x} {:016x} ",
        payload.len(),
        crc32(payload),
        lsn,
        key.circuit,
        key.compiler,
    )
    .into_bytes();
    debug_assert_eq!(buf.len(), RECORD_HEADER_LEN);
    buf.extend_from_slice(payload);
    buf.push(b'\n');
    buf
}

fn hex_field(buf: &[u8], range: std::ops::Range<usize>) -> Option<u64> {
    let text = std::str::from_utf8(&buf[range]).ok()?;
    u64::from_str_radix(text, 16).ok()
}

/// Parses a header at the start of `buf`; `None` means "not a valid record
/// boundary" (torn tail, mid-write bytes, or damage).
fn parse_header(buf: &[u8]) -> Option<Header> {
    if buf.len() < RECORD_HEADER_LEN || !buf.starts_with(RECORD_MAGIC) {
        return None;
    }
    for sep in [13, 22, 39, 41, 58, 75] {
        if buf[sep] != b' ' {
            return None;
        }
    }
    let kind = match buf[40] {
        b'P' => RecordKind::Put,
        b'T' => RecordKind::Tombstone,
        _ => return None,
    };
    Some(Header {
        len: usize::try_from(hex_field(buf, 5..13)?).ok()?,
        crc: hex_field(buf, 14..22)? as u32,
        lsn: hex_field(buf, 23..39)?,
        kind,
        key: CacheKey { circuit: hex_field(buf, 42..58)?, compiler: hex_field(buf, 59..75)? },
    })
}

fn stem_seq(stem: &str) -> Option<u64> {
    let hex = stem.strip_prefix("seg-")?.get(..16)?;
    u64::from_str_radix(hex, 16).ok()
}

/// The pid embedded in a stem's writer token (`seg-<seq>-p<pid>-<n>`).
fn stem_pid(stem: &str) -> Option<u32> {
    let token = stem.strip_prefix("seg-")?.get(17..)?;
    token.strip_prefix('p')?.split('-').next()?.parse().ok()
}

#[cfg(target_os = "linux")]
fn pid_alive(pid: u32) -> bool {
    Path::new(&format!("/proc/{pid}")).exists()
}

#[cfg(not(target_os = "linux"))]
fn pid_alive(_pid: u32) -> bool {
    // No portable liveness probe: be conservative and never adopt.
    true
}

fn index_insert(
    index: &mut HashMap<CacheKey, IndexEntry>,
    dead: &mut HashMap<CacheKey, u64>,
    key: CacheKey,
    kind: RecordKind,
    entry: IndexEntry,
) {
    match kind {
        RecordKind::Tombstone => {
            let tomb = dead.entry(key).or_insert(0);
            *tomb = (*tomb).max(entry.lsn);
            if index.get(&key).is_some_and(|cur| cur.lsn <= entry.lsn) {
                index.remove(&key);
                metrics::CACHE_SEGMENT_INDEX_ENTRIES.add(-1);
            }
        }
        RecordKind::Put => {
            if dead.get(&key).is_some_and(|&tomb| tomb >= entry.lsn) {
                return;
            }
            match index.entry(key) {
                std::collections::hash_map::Entry::Occupied(mut cur) => {
                    if entry.lsn >= cur.get().lsn {
                        cur.insert(entry);
                    }
                }
                std::collections::hash_map::Entry::Vacant(slot) => {
                    slot.insert(entry);
                    metrics::CACHE_SEGMENT_INDEX_ENTRIES.add(1);
                }
            }
        }
    }
}

impl SegmentStore {
    /// Opens (creating if needed) a segment store over `dir` with default
    /// tuning. See [`open_with`](Self::open_with).
    ///
    /// # Errors
    ///
    /// [`io::Error`] if the directory cannot be created or listed.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        Self::open_with(dir, SegmentConfig::default())
    }

    /// Opens a store: runs the legacy layer's recovery sweep, scans every
    /// segment into the index, and — when the advisory `compact.lock` is
    /// free — adopts dead writers' active segments (truncating torn tails)
    /// and compacts garbage out of the sealed set.
    ///
    /// # Errors
    ///
    /// [`io::Error`] if the directory cannot be created or listed.
    pub fn open_with(dir: impl Into<PathBuf>, config: SegmentConfig) -> io::Result<Self> {
        static STORE_SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = dir.into();
        // The legacy layer's constructor creates the directory and sweeps
        // `*.tmp.*` debris; segment files never contain ".tmp." so the
        // sweep cannot eat them.
        let legacy = DiskLayer::new(&dir)?;
        let store = Self {
            token: format!("p{}-{}", std::process::id(), STORE_SEQ.fetch_add(1, Ordering::Relaxed)),
            config,
            legacy,
            state: Mutex::new(StoreState {
                index: HashMap::new(),
                dead: HashMap::new(),
                segments: HashMap::new(),
                active: None,
                next_seq: 1,
                next_lsn: 1,
            }),
            stats: SegmentCounters::default(),
            dir,
        };
        let lock = store.try_lock_dir();
        {
            let mut st = store.lock_state();
            if lock.is_some() {
                // Crashed compactions leave only their temp file behind.
                for name in store.list_dir()? {
                    if name.ends_with(".compacting") {
                        fs::remove_file(store.dir.join(name)).ok();
                    }
                }
            }
            store.refresh_locked(&mut st)?;
            if lock.is_some() {
                store.adopt_orphans_locked(&mut st);
                store.maybe_compact_locked(&mut st);
            }
        }
        if let Some(lock) = lock {
            fs::remove_file(lock).ok();
        }
        Ok(store)
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The legacy per-file layer sharing this directory (migrate-on-read
    /// source; its recovery report covers the opening sweep).
    pub fn legacy(&self) -> &DiskLayer {
        &self.legacy
    }

    /// A snapshot of this store's counters.
    pub fn stats(&self) -> SegmentStats {
        let st = self.lock_state();
        SegmentStats {
            appends: self.stats.appends.load(Ordering::Relaxed),
            seals: self.stats.seals.load(Ordering::Relaxed),
            compacted_records: self.stats.compacted_records.load(Ordering::Relaxed),
            recovered_bytes: self.stats.recovered_bytes.load(Ordering::Relaxed),
            migrated: self.stats.migrated.load(Ordering::Relaxed),
            index_entries: st.index.len(),
            segments: st.segments.len(),
        }
    }

    /// State lock, recovering from poisoning: every mutation sequence is
    /// ordered file-write-first, so a panic unwinding through a fault point
    /// leaves the in-memory state consistent with some durable prefix.
    fn lock_state(&self) -> std::sync::MutexGuard<'_, StoreState> {
        self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn list_dir(&self) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let Ok(entry) = entry else { continue };
            names.push(entry.file_name().to_string_lossy().into_owned());
        }
        names.sort();
        Ok(names)
    }

    /// Acquires the advisory directory lock, breaking stale ones (dead pid,
    /// or — where liveness cannot be probed — an old mtime). Advisory: a
    /// raced break-in at worst runs two concurrent compactions, which
    /// rewrite the same live records under the same LSNs.
    fn try_lock_dir(&self) -> Option<PathBuf> {
        let path = self.dir.join("compact.lock");
        for _ in 0..2 {
            match OpenOptions::new().write(true).create_new(true).open(&path) {
                Ok(mut f) => {
                    let _ = write!(f, "{}", std::process::id());
                    return Some(path);
                }
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                    let stale = fs::read_to_string(&path)
                        .ok()
                        .and_then(|pid| pid.trim().parse::<u32>().ok())
                        .map(|pid| pid != std::process::id() && !pid_alive(pid))
                        .unwrap_or(true)
                        || fs::metadata(&path)
                            .and_then(|m| m.modified())
                            .ok()
                            .and_then(|t| t.elapsed().ok())
                            .is_some_and(|age| age.as_secs() > 300);
                    if !stale {
                        return None;
                    }
                    fs::remove_file(&path).ok();
                }
                Err(_) => return None,
            }
        }
        None
    }

    /// Re-lists the directory and scans every segment's unindexed suffix,
    /// making entries appended by other writers (or compacted elsewhere)
    /// visible. Segments that vanished (compacted away) are dropped along
    /// with index entries still pointing at them — their live records were
    /// re-indexed from the replacement segment by the same scan.
    fn refresh_locked(&self, st: &mut StoreState) -> io::Result<()> {
        let names = self.list_dir()?;
        let mut present: Vec<(String, bool)> = Vec::new();
        for name in &names {
            if let Some(stem) = name.strip_suffix(".seg.log") {
                present.push((stem.to_owned(), true));
            } else if let Some(stem) = name.strip_suffix(".active.log") {
                present.push((stem.to_owned(), false));
            }
        }
        for (stem, sealed) in &present {
            let path =
                self.dir.join(format!("{stem}.{}", if *sealed { "seg.log" } else { "active.log" }));
            let meta = st.segments.entry(stem.clone()).or_insert_with(|| SegmentMeta {
                path: path.clone(),
                sealed: *sealed,
                scanned: 0,
                records: 0,
                file: None,
            });
            if meta.path != path {
                // Sealed (renamed) by another writer; any cached handle
                // still reads the same inode.
                meta.path = path;
            }
            meta.sealed = *sealed;
            if let Some(seq) = stem_seq(stem) {
                st.next_seq = st.next_seq.max(seq + 1);
            }
            self.scan_segment_locked(st, stem);
        }
        // Purge segments deleted by a foreign compaction.
        let gone: Vec<String> = st
            .segments
            .keys()
            .filter(|stem| !present.iter().any(|(s, _)| s == *stem))
            .cloned()
            .collect();
        for stem in gone {
            if st.active.as_ref().is_some_and(|a| a.stem == stem) {
                continue; // our own active file; never purge it blindly
            }
            st.segments.remove(&stem);
            let orphaned: Vec<CacheKey> =
                st.index.iter().filter(|(_, e)| e.stem == stem).map(|(&k, _)| k).collect();
            for key in orphaned {
                st.index.remove(&key);
                metrics::CACHE_SEGMENT_INDEX_ENTRIES.add(-1);
            }
        }
        Ok(())
    }

    /// Scans one segment from its last indexed offset, validating each
    /// record (header shape, bounds, trailing newline, checksum) before
    /// indexing it. Scanning stops at the first invalid boundary: in an
    /// active segment that tail may still be completed by its writer (the
    /// offset is not advanced); in a sealed segment it is damage, skipped
    /// permanently and counted as recovered bytes.
    fn scan_segment_locked(&self, st: &mut StoreState, stem: &str) {
        let StoreState { index, dead, segments, next_lsn, .. } = st;
        let Some(meta) = segments.get_mut(stem) else { return };
        let file_len = match fs::metadata(&meta.path) {
            Ok(m) => m.len(),
            Err(_) => return,
        };
        if file_len <= meta.scanned {
            return;
        }
        let mut buf = Vec::with_capacity((file_len - meta.scanned) as usize);
        let read = (|| -> io::Result<()> {
            let mut f = File::open(&meta.path)?;
            f.seek(SeekFrom::Start(meta.scanned))?;
            f.take(file_len - meta.scanned).read_to_end(&mut buf)?;
            Ok(())
        })();
        if read.is_err() {
            return;
        }
        let base = meta.scanned;
        let mut pos = 0usize;
        while pos < buf.len() {
            let rest = &buf[pos..];
            let valid = parse_header(rest).and_then(|h| {
                let total = RECORD_HEADER_LEN + h.len + 1;
                (rest.len() >= total
                    && rest[total - 1] == b'\n'
                    && crc32(&rest[RECORD_HEADER_LEN..RECORD_HEADER_LEN + h.len]) == h.crc)
                    .then_some((h, total))
            });
            let Some((header, total)) = valid else {
                if meta.sealed {
                    // Damage inside a sealed file: nothing after it is
                    // reachable; skip it for good.
                    let lost = (buf.len() - pos) as u64;
                    meta.scanned = base + buf.len() as u64;
                    self.stats.recovered_bytes.fetch_add(lost, Ordering::Relaxed);
                    metrics::CACHE_SEGMENT_RECOVERED_BYTES.add(lost);
                }
                return;
            };
            *next_lsn = (*next_lsn).max(header.lsn + 1);
            index_insert(
                index,
                dead,
                header.key,
                header.kind,
                IndexEntry {
                    stem: stem.to_owned(),
                    offset: base + pos as u64 + RECORD_HEADER_LEN as u64,
                    len: header.len,
                    lsn: header.lsn,
                },
            );
            meta.records += 1;
            pos += total;
            meta.scanned = base + pos as u64;
        }
    }

    /// Adopts active segments of dead writers: truncates the torn tail (if
    /// any) to the last valid record boundary and seals the file. Only runs
    /// under the directory lock.
    fn adopt_orphans_locked(&self, st: &mut StoreState) {
        let orphans: Vec<String> = st
            .segments
            .iter()
            .filter(|(stem, meta)| {
                !meta.sealed
                    && stem_pid(stem).is_some_and(|pid| !pid_alive(pid))
                    && st.active.as_ref().map(|a| &a.stem) != Some(stem)
            })
            .map(|(stem, _)| stem.clone())
            .collect();
        for stem in orphans {
            let Some(meta) = st.segments.get_mut(&stem) else { continue };
            let file_len = fs::metadata(&meta.path).map(|m| m.len()).unwrap_or(meta.scanned);
            if file_len > meta.scanned {
                let torn = file_len - meta.scanned;
                let truncated = OpenOptions::new()
                    .write(true)
                    .open(&meta.path)
                    .and_then(|f| f.set_len(meta.scanned));
                if truncated.is_ok() {
                    self.stats.recovered_bytes.fetch_add(torn, Ordering::Relaxed);
                    metrics::CACHE_SEGMENT_RECOVERED_BYTES.add(torn);
                }
            }
            let sealed_path = self.dir.join(format!("{stem}.seg.log"));
            if fs::rename(&meta.path, &sealed_path).is_ok() {
                meta.path = sealed_path;
                meta.sealed = true;
                meta.file = None;
                self.stats.seals.fetch_add(1, Ordering::Relaxed);
                metrics::CACHE_SEGMENT_SEALS.incr();
            }
        }
    }

    /// Rewrites the live records of every sealed segment into one fresh
    /// sealed segment (same LSNs) and deletes the originals, when the
    /// garbage they carry clears the configured thresholds. Tombstones are
    /// retained: a record they shadow may still sit in another writer's
    /// active segment.
    fn maybe_compact_locked(&self, st: &mut StoreState) {
        let sealed: Vec<String> =
            st.segments.iter().filter(|(_, m)| m.sealed).map(|(s, _)| s.clone()).collect();
        if sealed.is_empty() {
            return;
        }
        let total: u64 = sealed.iter().filter_map(|s| st.segments.get(s)).map(|m| m.scanned).sum();
        let live_puts: Vec<(CacheKey, IndexEntry)> = st
            .index
            .iter()
            .filter(|(_, e)| sealed.contains(&e.stem))
            .map(|(&k, e)| (k, e.clone()))
            .collect();
        let live_bytes: u64 =
            live_puts.iter().map(|(_, e)| e.len as u64 + RECORD_OVERHEAD).sum::<u64>()
                + st.dead.len() as u64 * RECORD_OVERHEAD;
        let garbage = total.saturating_sub(live_bytes);
        if garbage < self.config.compact_min_garbage
            || (garbage as f64) < self.config.compact_garbage_ratio * total as f64
        {
            return;
        }

        // Read every sealed source once, sequentially.
        let mut sources: HashMap<String, Vec<u8>> = HashMap::new();
        for stem in &sealed {
            let Some(meta) = st.segments.get(stem) else { return };
            match fs::read(&meta.path) {
                Ok(bytes) => sources.insert(stem.clone(), bytes),
                Err(_) => return, // compaction is optional; never at the cost of data
            };
        }

        let seq = st.next_seq;
        let new_stem = format!("seg-{seq:016x}-{}", self.token);
        let tmp = self.dir.join(format!("{new_stem}.compacting"));
        let mut out = Vec::new();
        let mut moved: Vec<(CacheKey, IndexEntry)> = Vec::new();
        let mut kept = 0u64;
        for (key, entry) in &live_puts {
            let src = &sources[&entry.stem];
            let (start, end) = (entry.offset as usize, entry.offset as usize + entry.len);
            let Some(payload) = src.get(start..end) else { return };
            moved.push((
                *key,
                IndexEntry {
                    stem: new_stem.clone(),
                    offset: out.len() as u64 + RECORD_HEADER_LEN as u64,
                    len: entry.len,
                    lsn: entry.lsn,
                },
            ));
            out.extend_from_slice(&frame_record(entry.lsn, RecordKind::Put, *key, payload));
            kept += 1;
        }
        let mut dead_sorted: Vec<(CacheKey, u64)> = st.dead.iter().map(|(&k, &l)| (k, l)).collect();
        dead_sorted.sort_by_key(|&(k, _)| (k.circuit, k.compiler));
        for (key, lsn) in dead_sorted {
            out.extend_from_slice(&frame_record(lsn, RecordKind::Tombstone, key, &[]));
            kept += 1;
        }

        let written = (|| -> io::Result<()> {
            if let Some(e) = zac_telemetry::fault_point!("cache.disk.write") {
                return Err(e);
            }
            let mut f = OpenOptions::new().write(true).create_new(true).open(&tmp)?;
            f.write_all(&out)?;
            f.flush()?;
            Ok(())
        })();
        if written.is_err() {
            fs::remove_file(&tmp).ok();
            return;
        }
        let final_path = self.dir.join(format!("{new_stem}.seg.log"));
        if fs::rename(&tmp, &final_path).is_err() {
            fs::remove_file(&tmp).ok();
            return;
        }
        st.next_seq += 1;

        // The replacement is durable; retire the sources.
        let dropped: u64 = sealed
            .iter()
            .filter_map(|s| st.segments.get(s))
            .map(|m| m.records)
            .sum::<u64>()
            .saturating_sub(kept);
        for stem in &sealed {
            if let Some(meta) = st.segments.remove(stem) {
                fs::remove_file(&meta.path).ok();
            }
        }
        st.segments.insert(
            new_stem.clone(),
            SegmentMeta {
                path: final_path,
                sealed: true,
                scanned: out.len() as u64,
                records: kept,
                file: None,
            },
        );
        for (key, entry) in moved {
            // Direct rebind (not `index_insert`): same LSN, new location.
            st.index.insert(key, entry);
        }
        self.stats.compacted_records.fetch_add(dropped, Ordering::Relaxed);
        metrics::CACHE_SEGMENT_COMPACTED_RECORDS.add(dropped);
    }

    /// Looks `key` up, refreshing the index from disk on a miss so entries
    /// appended by other processes are found, and falling back to the
    /// legacy per-file layer last (migrate-on-read).
    pub fn load_classified(&self, key: CacheKey) -> LoadOutcome {
        let mut st = self.lock_state();
        if let Some(outcome) = self.read_indexed_locked(&mut st, key) {
            return outcome;
        }
        let _ = self.refresh_locked(&mut st);
        if let Some(outcome) = self.read_indexed_locked(&mut st, key) {
            return outcome;
        }
        match self.legacy.load_classified(key) {
            LoadOutcome::Hit(out) => {
                // Serve the legacy entry and migrate it into the log so the
                // next reader (any process) finds it in the index.
                if self.append_locked(&mut st, key, out.as_ref()).is_ok() {
                    self.stats.migrated.fetch_add(1, Ordering::Relaxed);
                }
                LoadOutcome::Hit(out)
            }
            other => other,
        }
    }

    /// Reads the indexed record for `key`, if any. `None` means "not in
    /// the index (or unreachable without a refresh)" — the caller decides
    /// whether to refresh and retry.
    fn read_indexed_locked(&self, st: &mut StoreState, key: CacheKey) -> Option<LoadOutcome> {
        let entry = st.index.get(&key)?.clone();
        if zac_telemetry::fault_point!("cache.disk.read").is_some() {
            return Some(LoadOutcome::ReadError);
        }
        let opened = {
            let meta = st.segments.get_mut(&entry.stem)?;
            if meta.file.is_none() {
                meta.file = File::open(&meta.path).ok();
            }
            meta.file.is_some()
        };
        if !opened {
            // Compacted away (or deleted) under us; drop the stale binding
            // and let the caller refresh to find the record's new home.
            st.index.remove(&key);
            metrics::CACHE_SEGMENT_INDEX_ENTRIES.add(-1);
            return None;
        }
        let mut payload = vec![0u8; entry.len];
        let read = {
            let file = st.segments.get_mut(&entry.stem)?.file.as_mut()?;
            file.seek(SeekFrom::Start(entry.offset)).and_then(|_| file.read_exact(&mut payload))
        };
        if read.is_err() {
            return Some(LoadOutcome::ReadError);
        }
        match decode_output(&payload) {
            Ok(mut out) => {
                out.from_cache = false;
                Some(LoadOutcome::Hit(Box::new(out)))
            }
            Err(_) => {
                // Post-scan bit rot: the checksum passed at indexing time
                // but the bytes no longer decode. Drop the entry; the next
                // lookup is a clean miss.
                st.index.remove(&key);
                metrics::CACHE_SEGMENT_INDEX_ENTRIES.add(-1);
                Some(LoadOutcome::Quarantined)
            }
        }
    }

    /// Appends `key → output`, retrying transient failures with the same
    /// budget and backoff as the per-file layer. Returns the retries used.
    ///
    /// # Errors
    ///
    /// [`io::Error`] once the budget is exhausted, or immediately with
    /// `InvalidData` for non-finite outputs.
    pub fn append(&self, key: CacheKey, output: &CompileOutput) -> io::Result<u64> {
        let mut pristine = output.clone();
        pristine.from_cache = false;
        let mut retries = 0u64;
        loop {
            let mut st = self.lock_state();
            let err = match self.append_locked(&mut st, key, &pristine) {
                Ok(()) => return Ok(retries),
                Err(e) => e,
            };
            drop(st);
            if err.kind() == io::ErrorKind::InvalidData || retries + 1 >= u64::from(APPEND_ATTEMPTS)
            {
                return Err(err);
            }
            retries += 1;
            std::thread::sleep(backoff(key, retries));
        }
    }

    /// Removes `key` by appending a tombstone (compaction reclaims the
    /// record's bytes at a later open).
    ///
    /// # Errors
    ///
    /// [`io::Error`] if the tombstone cannot be written.
    pub fn remove(&self, key: CacheKey) -> io::Result<()> {
        let mut st = self.lock_state();
        self.write_record_locked(&mut st, key, RecordKind::Tombstone, &[])
    }

    fn append_locked(
        &self,
        st: &mut StoreState,
        key: CacheKey,
        output: &CompileOutput,
    ) -> io::Result<()> {
        let payload = encode_output(output)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        self.write_record_locked(st, key, RecordKind::Put, &payload)
    }

    fn write_record_locked(
        &self,
        st: &mut StoreState,
        key: CacheKey,
        kind: RecordKind,
        payload: &[u8],
    ) -> io::Result<()> {
        if let Some(e) = zac_telemetry::fault_point!("cache.disk.write") {
            return Err(e);
        }
        if st.active.is_none() {
            let seq = st.next_seq;
            let stem = format!("seg-{seq:016x}-{}", self.token);
            let path = self.dir.join(format!("{stem}.active.log"));
            let file = OpenOptions::new().append(true).create_new(true).open(&path)?;
            st.next_seq += 1;
            st.segments.insert(
                stem.clone(),
                SegmentMeta { path, sealed: false, scanned: 0, records: 0, file: None },
            );
            st.active = Some(ActiveSegment { stem, file, written: 0 });
        }
        let lsn = st.next_lsn;
        let frame = frame_record(lsn, kind, key, payload);
        {
            let active = st.active.as_mut().expect("active segment just ensured");
            if let Err(e) = active.file.write_all(&frame).and_then(|()| active.file.flush()) {
                // Truncate back to the known-good boundary so the file never
                // carries a torn record that a foreign scan would stop at.
                let _ = active.file.set_len(active.written);
                return Err(e);
            }
            active.written += frame.len() as u64;
        }
        st.next_lsn += 1;
        let active_stem = st.active.as_ref().map(|a| a.stem.clone()).expect("active exists");
        let active_written = st.active.as_ref().map(|a| a.written).expect("active exists");
        if let Some(meta) = st.segments.get_mut(&active_stem) {
            meta.scanned = active_written;
            meta.records += 1;
        }
        index_insert(
            &mut st.index,
            &mut st.dead,
            key,
            kind,
            IndexEntry {
                stem: active_stem,
                offset: active_written - payload.len() as u64 - 1,
                len: payload.len(),
                lsn,
            },
        );
        self.stats.appends.fetch_add(1, Ordering::Relaxed);
        metrics::CACHE_SEGMENT_APPENDS.incr();
        if active_written >= self.config.seal_bytes {
            // Best-effort: the append itself already succeeded, so a seal
            // failure must not fail it (a retried append would duplicate the
            // record). Sealing retries on the next append. Panic-kind faults
            // still unwind here, which is what the mid-seal crash tests want.
            let _ = self.seal_active_locked(st, true);
        }
        Ok(())
    }

    /// Seals the active segment (rename to `.seg.log`). With `faults` set it
    /// carries the `cache.disk.write` fault point so mid-seal crashes are
    /// testable; on failure the segment simply stays active and sealing
    /// retries on the next append. `Drop` passes `faults = false` so an armed
    /// fault plan can't fire during teardown of an unrelated test.
    fn seal_active_locked(&self, st: &mut StoreState, faults: bool) -> io::Result<()> {
        let Some(active) = st.active.take() else { return Ok(()) };
        if faults {
            if let Some(e) = zac_telemetry::fault_point!("cache.disk.write") {
                st.active = Some(active);
                return Err(e);
            }
        }
        let sealed_path = self.dir.join(format!("{}.seg.log", active.stem));
        let old_path = self.dir.join(format!("{}.active.log", active.stem));
        match fs::rename(&old_path, &sealed_path) {
            Ok(()) => {
                if let Some(meta) = st.segments.get_mut(&active.stem) {
                    meta.path = sealed_path;
                    meta.sealed = true;
                }
                self.stats.seals.fetch_add(1, Ordering::Relaxed);
                metrics::CACHE_SEGMENT_SEALS.incr();
                Ok(())
            }
            Err(e) => {
                st.active = Some(active);
                Err(e)
            }
        }
    }

    /// Loads many keys with one sequential read per touched segment — the
    /// warm path behind `CompileCache::warm_from_manifest`. Keys absent
    /// from the index (after one refresh) are skipped.
    pub fn bulk_load(&self, keys: &[CacheKey]) -> Vec<(CacheKey, CompileOutput)> {
        let mut st = self.lock_state();
        if keys.iter().any(|k| !st.index.contains_key(k)) {
            let _ = self.refresh_locked(&mut st);
        }
        let mut by_stem: HashMap<String, Vec<(CacheKey, u64, usize)>> = HashMap::new();
        for &key in keys {
            if let Some(e) = st.index.get(&key) {
                by_stem.entry(e.stem.clone()).or_default().push((key, e.offset, e.len));
            }
        }
        let mut warmed = Vec::with_capacity(keys.len());
        for (stem, locs) in by_stem {
            let Some(meta) = st.segments.get(&stem) else { continue };
            let Ok(bytes) = fs::read(&meta.path) else { continue };
            for (key, offset, len) in locs {
                let Some(payload) = bytes.get(offset as usize..offset as usize + len) else {
                    continue;
                };
                if let Ok(mut out) = decode_output(payload) {
                    out.from_cache = false;
                    warmed.push((key, out));
                }
            }
        }
        warmed
    }
}

impl Drop for SegmentStore {
    fn drop(&mut self) {
        // Seal the active segment so a cleanly-closed store leaves no
        // `.active.log` for a later opener to treat as an orphan.
        let mut st = self.lock_state();
        let _ = self.seal_active_locked(&mut st, false);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{sample_output, temp_cache_dir};

    fn key(i: u64) -> CacheKey {
        CacheKey { circuit: i, compiler: 0x42 }
    }

    #[test]
    fn header_roundtrip_and_framing_invariants() {
        let payload = b"payload-bytes";
        let frame = frame_record(7, RecordKind::Put, key(3), payload);
        assert_eq!(frame.len(), RECORD_HEADER_LEN + payload.len() + 1);
        assert_eq!(*frame.last().unwrap(), b'\n');
        let h = parse_header(&frame).expect("framed record parses");
        assert_eq!((h.len, h.lsn, h.kind), (payload.len(), 7, RecordKind::Put));
        assert_eq!(h.key, key(3));
        assert_eq!(h.crc, crc32(payload));
        // A tombstone frames an empty payload.
        let tomb = frame_record(9, RecordKind::Tombstone, key(3), &[]);
        assert_eq!(tomb.len(), RECORD_HEADER_LEN + 1);
        assert_eq!(parse_header(&tomb).unwrap().kind, RecordKind::Tombstone);
    }

    #[test]
    fn corrupt_headers_do_not_parse() {
        let frame = frame_record(1, RecordKind::Put, key(1), b"x");
        assert!(parse_header(&frame[..RECORD_HEADER_LEN - 1]).is_none(), "truncated header");
        let mut bad_magic = frame.clone();
        bad_magic[0] = b'X';
        assert!(parse_header(&bad_magic).is_none());
        let mut bad_kind = frame.clone();
        bad_kind[40] = b'Q';
        assert!(parse_header(&bad_kind).is_none());
        let mut bad_hex = frame;
        bad_hex[5] = b'z';
        assert!(parse_header(&bad_hex).is_none());
    }

    #[test]
    fn stem_parsing() {
        let stem = format!("seg-{:016x}-p{}-3", 0x2au64, 4242);
        assert_eq!(stem_seq(&stem), Some(0x2a));
        assert_eq!(stem_pid(&stem), Some(4242));
        assert_eq!(stem_seq("not-a-stem"), None);
        assert_eq!(stem_pid("seg-0000000000000001-weird"), None);
    }

    #[test]
    fn append_and_reload_across_open() {
        let dir = temp_cache_dir("seg-basic");
        {
            let store = SegmentStore::open(&dir).unwrap();
            store.append(key(1), &sample_output("a", 1)).unwrap();
            store.append(key(2), &sample_output("b", 2)).unwrap();
            // Supersede key 1.
            store.append(key(1), &sample_output("a2", 3)).unwrap();
            assert_eq!(store.stats().appends, 3);
            assert_eq!(store.stats().index_entries, 2);
        }
        let store = SegmentStore::open(&dir).unwrap();
        let LoadOutcome::Hit(out) = store.load_classified(key(1)) else {
            panic!("key 1 should hit");
        };
        assert_eq!(out.summary.name, "a2", "highest LSN wins");
        assert!(matches!(store.load_classified(key(2)), LoadOutcome::Hit(_)));
        assert!(matches!(store.load_classified(key(9)), LoadOutcome::Miss));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tombstone_deletes_across_open_and_scan_order() {
        let dir = temp_cache_dir("seg-tomb");
        {
            let store = SegmentStore::open(&dir).unwrap();
            store.append(key(5), &sample_output("dead", 1)).unwrap();
            store.remove(key(5)).unwrap();
            assert!(matches!(store.load_classified(key(5)), LoadOutcome::Miss));
        }
        let store = SegmentStore::open(&dir).unwrap();
        assert!(matches!(store.load_classified(key(5)), LoadOutcome::Miss));
        assert_eq!(store.stats().index_entries, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn seal_rotates_at_threshold_and_scans_back() {
        let dir = temp_cache_dir("seg-seal");
        let config = SegmentConfig { seal_bytes: 1, ..SegmentConfig::default() };
        {
            let store = SegmentStore::open_with(&dir, config).unwrap();
            for i in 0..4 {
                store.append(key(i), &sample_output("s", i as usize)).unwrap();
            }
            assert_eq!(store.stats().seals, 4, "every append rotates at a 1-byte threshold");
        }
        let names: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(Result::ok)
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.ends_with(".log"))
            .collect();
        assert_eq!(names.len(), 4);
        assert!(names.iter().all(|n| n.ends_with(".seg.log")), "{names:?}");
        let store = SegmentStore::open_with(&dir, config).unwrap();
        for i in 0..4 {
            assert!(matches!(store.load_classified(key(i)), LoadOutcome::Hit(_)), "key {i}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_invisible_and_truncated_on_adopting_open() {
        let dir = temp_cache_dir("seg-torn");
        let path;
        {
            let store = SegmentStore::open(&dir).unwrap();
            store.append(key(1), &sample_output("keep", 1)).unwrap();
            let st = store.lock_state();
            path = st.segments.values().next().unwrap().path.clone();
            drop(st);
            // Simulate a crash: forget the store so Drop does not seal.
            std::mem::forget(store);
        }
        let clean_len = fs::metadata(&path).unwrap().len();
        // A torn record: valid header promising more payload than exists.
        let mut torn = frame_record(99, RecordKind::Put, key(2), &[1, 2, 3, 4]);
        torn.truncate(torn.len() - 3);
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&torn).unwrap();
        drop(f);

        // The dead-writer stem uses our own (live) pid, so adoption skips
        // it; rename it to a definitely-dead writer token.
        let adopted = dir.join("seg-0000000000000001-p999999-0.active.log");
        fs::rename(&path, &adopted).unwrap();

        let store = SegmentStore::open(&dir).unwrap();
        assert!(matches!(store.load_classified(key(1)), LoadOutcome::Hit(_)), "good prefix kept");
        assert!(matches!(store.load_classified(key(2)), LoadOutcome::Miss), "torn tail dropped");
        let stats = store.stats();
        assert_eq!(stats.recovered_bytes, torn.len() as u64);
        assert!(stats.seals >= 1, "orphan adopted and sealed");
        let sealed = dir.join("seg-0000000000000001-p999999-0.seg.log");
        assert!(sealed.exists());
        assert_eq!(fs::metadata(&sealed).unwrap().len(), clean_len, "truncated to last boundary");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compaction_on_open_drops_garbage_and_keeps_live_records() {
        let dir = temp_cache_dir("seg-compact");
        let config = SegmentConfig {
            seal_bytes: 1, // seal after every append → all garbage is in sealed segments
            compact_min_garbage: 1,
            compact_garbage_ratio: 0.0,
        };
        {
            let store = SegmentStore::open_with(&dir, config).unwrap();
            for round in 0..3 {
                for i in 0..4 {
                    store.append(key(i), &sample_output("v", round * 10 + i as usize)).unwrap();
                }
            }
            store.remove(key(3)).unwrap();
        }
        let store = SegmentStore::open_with(&dir, config).unwrap();
        let stats = store.stats();
        // 12 puts of which 3 live (key 3 tombstoned), plus 1 tombstone kept.
        assert_eq!(stats.compacted_records, 9, "{stats:?}");
        assert_eq!(stats.index_entries, 3);
        assert_eq!(stats.segments, 1, "sealed set rewritten into one segment");
        for i in 0..3 {
            let LoadOutcome::Hit(out) = store.load_classified(key(i)) else {
                panic!("key {i} must survive compaction");
            };
            assert_eq!(out.summary.g1, 20 + i as usize, "latest version survives");
        }
        assert!(matches!(store.load_classified(key(3)), LoadOutcome::Miss));

        // The tombstone survives the rewrite: a third open still misses.
        let store = SegmentStore::open_with(&dir, config).unwrap();
        assert!(matches!(store.load_classified(key(3)), LoadOutcome::Miss));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cross_store_visibility_without_reopen() {
        let dir = temp_cache_dir("seg-xstore");
        let a = SegmentStore::open(&dir).unwrap();
        let b = SegmentStore::open(&dir).unwrap();
        a.append(key(1), &sample_output("from-a", 1)).unwrap();
        let LoadOutcome::Hit(out) = b.load_classified(key(1)) else {
            panic!("store B must see A's append via refresh-on-miss");
        };
        assert_eq!(out.summary.name, "from-a");
        b.append(key(2), &sample_output("from-b", 2)).unwrap();
        assert!(matches!(a.load_classified(key(2)), LoadOutcome::Hit(_)));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn migrates_legacy_entries_on_read() {
        let dir = temp_cache_dir("seg-migrate");
        {
            let legacy = DiskLayer::new(&dir).unwrap();
            legacy.store(key(7), &sample_output("old", 7)).unwrap();
        }
        let store = SegmentStore::open(&dir).unwrap();
        assert_eq!(store.stats().index_entries, 0, "legacy entries are not pre-indexed");
        let LoadOutcome::Hit(out) = store.load_classified(key(7)) else {
            panic!("legacy entry served on miss");
        };
        assert_eq!(out.summary.name, "old");
        let stats = store.stats();
        assert_eq!((stats.migrated, stats.appends), (1, 1), "served entry re-appended to the log");
        assert_eq!(stats.index_entries, 1);
        // Remove the legacy file: the migrated record now carries the hit.
        fs::remove_file(store.legacy().entry_path(key(7))).unwrap();
        assert!(matches!(store.load_classified(key(7)), LoadOutcome::Hit(_)));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bulk_load_returns_decoded_outputs() {
        let dir = temp_cache_dir("seg-bulk");
        let store = SegmentStore::open(&dir).unwrap();
        for i in 0..6 {
            store.append(key(i), &sample_output("w", i as usize)).unwrap();
        }
        let keys: Vec<CacheKey> = (0..8).map(key).collect();
        let mut warmed = store.bulk_load(&keys);
        warmed.sort_by_key(|(k, _)| k.circuit);
        assert_eq!(warmed.len(), 6, "absent keys are skipped");
        for (i, (k, out)) in warmed.iter().enumerate() {
            assert_eq!(k.circuit, i as u64);
            assert_eq!(out.summary.g1, i);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn clean_close_seals_the_active_segment() {
        let dir = temp_cache_dir("seg-close");
        {
            let store = SegmentStore::open(&dir).unwrap();
            store.append(key(1), &sample_output("x", 1)).unwrap();
        }
        let names: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(Result::ok)
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        assert!(
            names.iter().any(|n| n.ends_with(".seg.log"))
                && !names.iter().any(|n| n.ends_with(".active.log")),
            "{names:?}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lock_file_is_released_and_stale_locks_are_broken() {
        let dir = temp_cache_dir("seg-lock");
        {
            let _store = SegmentStore::open(&dir).unwrap();
            assert!(!dir.join("compact.lock").exists(), "lock released after open");
        }
        fs::write(dir.join("compact.lock"), "999999").unwrap(); // dead pid
        let store = SegmentStore::open(&dir).unwrap();
        assert!(!dir.join("compact.lock").exists(), "stale lock broken and released");
        drop(store);
        std::fs::remove_dir_all(&dir).ok();
    }
}
