//! Benchmark circuit generators (paper Sec. VII, QASMBench selection).
//!
//! The paper evaluates on 17 QASMBench circuits with 11–98 qubits. QASMBench
//! ships OpenQASM files; this reproduction regenerates the same algorithm
//! families programmatically at the same qubit counts (see DESIGN.md §2 for
//! the substitution rationale). Where the construction is formulaic (BV, GHZ,
//! cat, QFT, Ising) the 2Q-gate counts match the paper exactly; for the
//! Toffoli-heavy circuits (knn, swap_test, multiply, seca, wstate) our
//! textbook decompositions are slightly larger than Qiskit-O3's resynthesis;
//! comparison rows carry both counts (DESIGN.md §2).

use crate::circuit::Circuit;
use std::f64::consts::PI;

/// Bernstein–Vazirani on `n` qubits (data `0..n-1`, ancilla `n-1`) with
/// `ones` set bits spread evenly through the secret string.
///
/// # Panics
///
/// Panics if `n < 2` or `ones > n - 1`.
pub fn bv(n: usize, ones: usize) -> Circuit {
    assert!(n >= 2, "bv needs at least 2 qubits");
    let data = n - 1;
    assert!(ones <= data, "secret has more ones than data qubits");
    let mut c = Circuit::new(format!("bv_n{n}"), n);
    let anc = n - 1;
    c.x(anc).h(anc);
    for q in 0..data {
        c.h(q);
    }
    // Bresenham-style even spread of `ones` set bits over `data` positions.
    let mut acc = 0usize;
    for q in 0..data {
        acc += ones;
        if acc >= data {
            acc -= data;
            c.cx(q, anc);
        }
    }
    for q in 0..data {
        c.h(q);
    }
    c
}

/// GHZ state on `n` qubits: H then a CX chain.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn ghz(n: usize) -> Circuit {
    assert!(n >= 2, "ghz needs at least 2 qubits");
    let mut c = Circuit::new(format!("ghz_n{n}"), n);
    c.h(0);
    for q in 0..n - 1 {
        c.cx(q, q + 1);
    }
    c
}

/// Cat state on `n` qubits (same preparation as GHZ; kept as a distinct
/// benchmark to mirror QASMBench).
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn cat(n: usize) -> Circuit {
    let ghz = ghz(n);
    let mut c = Circuit::new(format!("cat_n{n}"), n);
    for g in ghz.gates() {
        c.push(*g);
    }
    c
}

/// One first-order Trotter step of a 1-D transverse-field Ising chain:
/// H layer, ZZ(φ) on even then odd neighbor pairs, RX(θ) layer.
///
/// Even pairs execute in parallel, which is what makes Ising the paper's
/// high-parallelism workload (49 simultaneous gates at n = 98).
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn ising(n: usize) -> Circuit {
    assert!(n >= 2, "ising needs at least 2 qubits");
    let mut c = Circuit::new(format!("ising_n{n}"), n);
    let phi = 0.3;
    let theta = 0.7;
    for q in 0..n {
        c.h(q);
    }
    let zz = |c: &mut Circuit, a: usize, b: usize| {
        c.cx(a, b).rz(phi, b).cx(a, b);
    };
    for a in (0..n - 1).step_by(2) {
        zz(&mut c, a, a + 1);
    }
    for a in (1..n - 1).step_by(2) {
        zz(&mut c, a, a + 1);
    }
    for q in 0..n {
        c.rx(theta, q);
    }
    c
}

/// Quantum Fourier transform on `n` qubits (no final swaps, matching the
/// paper's gate counts: n(n-1) two-qubit gates once each CP lowers to 2 CZ).
///
/// # Panics
///
/// Panics if `n < 1`.
pub fn qft(n: usize) -> Circuit {
    assert!(n >= 1, "qft needs at least 1 qubit");
    let mut c = Circuit::new(format!("qft_n{n}"), n);
    for i in 0..n {
        c.h(i);
        for j in (i + 1)..n {
            let theta = PI / f64::powi(2.0, (j - i) as i32);
            c.cp(theta, j, i);
        }
    }
    c
}

/// W-state preparation on `n` qubits via the linear cascade of Cruz et al.:
/// each step applies a controlled-G reflection (one CZ, since G is a
/// reflection and hence CZ-conjugate) followed by a CX, for exactly
/// `2(n-1)` two-qubit gates — matching the paper's wstate counts.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn wstate(n: usize) -> Circuit {
    assert!(n >= 2, "wstate needs at least 2 qubits");
    let mut c = Circuit::new(format!("wstate_n{n}"), n);
    c.x(0);
    for k in 1..n {
        // Keep amplitude sqrt(p) at qubit k-1, pass sqrt(1-p) onward, so all
        // n basis states end with amplitude 1/sqrt(n).
        let p = 1.0 / (n - k + 1) as f64;
        let beta = 2.0 * p.sqrt().acos();
        // controlled-G(k-1 → k) = (Ry(β/2) ⊗ I)·CZ·(Ry(-β/2) ⊗ I) on target k.
        c.ry(-beta / 2.0, k).cz(k - 1, k).ry(beta / 2.0, k);
        c.cx(k, k - 1);
    }
    c
}

/// Swap test over `(n-1)/2` qubit pairs with one ancilla (`n` odd).
///
/// # Panics
///
/// Panics if `n < 3` or `n` is even.
pub fn swap_test(n: usize) -> Circuit {
    assert!(n >= 3 && n % 2 == 1, "swap_test needs an odd qubit count >= 3");
    let k = (n - 1) / 2;
    let mut c = Circuit::new(format!("swap_test_n{n}"), n);
    let anc = 0;
    // Prepare unequal test states so the circuit is not trivial.
    for j in 0..k {
        c.h(1 + j);
        c.rx(0.3 + 0.1 * j as f64, 1 + k + j);
    }
    c.h(anc);
    for j in 0..k {
        c.cswap_decomposed(anc, 1 + j, 1 + k + j);
    }
    c.h(anc);
    c
}

/// Quantum k-nearest-neighbor kernel circuit: state loading plus a
/// swap-test battery over `(n-1)/2` pairs (QASMBench's knn family).
///
/// # Panics
///
/// Panics if `n < 3` or `n` is even.
pub fn knn(n: usize) -> Circuit {
    assert!(n >= 3 && n % 2 == 1, "knn needs an odd qubit count >= 3");
    let k = (n - 1) / 2;
    let mut c = Circuit::new(format!("knn_n{n}"), n);
    let anc = 0;
    for j in 0..k {
        c.ry(0.2 + 0.05 * j as f64, 1 + j);
        c.ry(1.1 - 0.03 * j as f64, 1 + k + j);
    }
    c.h(anc);
    for j in 0..k {
        c.cswap_decomposed(anc, 1 + j, 1 + k + j);
    }
    c.h(anc);
    c
}

/// A 3×2-bit multiplier on 13 qubits: Toffoli partial products accumulated
/// into the product register with carry propagation (QASMBench's multiply
/// family).
///
/// Layout: a = q0..q2, b = q3..q4, product = q5..q9, carries = q10..q12.
pub fn multiply() -> Circuit {
    let n = 13;
    let mut c = Circuit::new("multiply_n13".to_string(), n);
    let a = [0, 1, 2];
    let b = [3, 4];
    let p = [5, 6, 7, 8, 9];
    let carry = [10, 11, 12];
    // Load operands a = 0b101, b = 0b11.
    c.x(a[0]).x(a[2]).x(b[0]).x(b[1]);
    // Partial products: 6 Toffolis (36 two-qubit gates).
    for (i, &ai) in a.iter().enumerate() {
        for (j, &bj) in b.iter().enumerate() {
            c.ccx_decomposed(ai, bj, p[i + j]);
        }
    }
    // Carry taps into the scratch register plus top-bit fold (4 CX), giving
    // the paper's 40 two-qubit gates.
    c.cx(p[1], carry[0]).cx(p[2], carry[1]).cx(p[3], carry[2]);
    c.cx(carry[2], p[4]);
    c
}

/// Shor-code error-correction episode on 11 qubits (QASMBench's seca
/// family): encode into the 9-qubit Shor code, inject an error, decode with
/// majority voting (Toffolis), and re-verify one block.
///
/// Layout: code block = q0..q8, scratch = q9..q10.
pub fn seca() -> Circuit {
    let n = 11;
    let mut c = Circuit::new("seca_n11".to_string(), n);
    let round = |c: &mut Circuit, err_q: usize| {
        // --- encode: phase-flip level then bit-flip level ---
        c.cx(0, 3).cx(0, 6);
        c.h(0).h(3).h(6);
        for blk in [0, 3, 6] {
            c.cx(blk, blk + 1).cx(blk, blk + 2);
        }
        // --- error injection ---
        c.x(err_q).z(0);
        // --- decode bit-flip level with majority vote ---
        for blk in [0, 3, 6] {
            c.cx(blk, blk + 1).cx(blk, blk + 2);
            c.ccx_decomposed(blk + 1, blk + 2, blk);
        }
        // --- decode phase-flip level ---
        c.h(0).h(3).h(6);
        c.cx(0, 3).cx(0, 6);
        c.ccx_decomposed(3, 6, 0);
    };
    // Two error-correction episodes (QASMBench's seca applies the cycle
    // repeatedly), then a verification round on the scratch qubits.
    round(&mut c, 4);
    round(&mut c, 7);
    c.cx(0, 9).cx(3, 9).cx(0, 10).cx(6, 10);
    c
}

/// Descriptor tying a generated circuit to the paper's reported gate counts.
#[derive(Debug, Clone)]
pub struct BenchEntry {
    /// The generated circuit.
    pub circuit: Circuit,
    /// 2Q-gate count reported in the paper (Fig. 8 labels).
    pub paper_2q: usize,
    /// 1Q-gate count reported in the paper (Fig. 8 labels).
    pub paper_1q: usize,
}

/// The paper's 17-circuit evaluation suite, in Fig. 8 order.
///
/// # Example
///
/// ```
/// let suite = zac_circuit::bench_circuits::paper_suite();
/// assert_eq!(suite.len(), 17);
/// assert_eq!(suite[0].circuit.name(), "bv_n14");
/// ```
pub fn paper_suite() -> Vec<BenchEntry> {
    vec![
        BenchEntry { circuit: bv(14, 13), paper_2q: 13, paper_1q: 28 },
        BenchEntry { circuit: bv(19, 18), paper_2q: 18, paper_1q: 38 },
        BenchEntry { circuit: bv(30, 18), paper_2q: 18, paper_1q: 38 },
        BenchEntry { circuit: bv(70, 36), paper_2q: 36, paper_1q: 107 },
        BenchEntry { circuit: cat(22), paper_2q: 21, paper_1q: 43 },
        BenchEntry { circuit: cat(35), paper_2q: 34, paper_1q: 69 },
        BenchEntry { circuit: ghz(23), paper_2q: 22, paper_1q: 45 },
        BenchEntry { circuit: ghz(40), paper_2q: 39, paper_1q: 79 },
        BenchEntry { circuit: ghz(78), paper_2q: 77, paper_1q: 155 },
        BenchEntry { circuit: ising(42), paper_2q: 82, paper_1q: 144 },
        BenchEntry { circuit: ising(98), paper_2q: 194, paper_1q: 340 },
        BenchEntry { circuit: knn(31), paper_2q: 105, paper_1q: 153 },
        BenchEntry { circuit: multiply(), paper_2q: 40, paper_1q: 53 },
        BenchEntry { circuit: qft(18), paper_2q: 306, paper_1q: 324 },
        BenchEntry { circuit: seca(), paper_2q: 80, paper_1q: 100 },
        BenchEntry { circuit: swap_test(25), paper_2q: 84, paper_1q: 123 },
        BenchEntry { circuit: wstate(27), paper_2q: 52, paper_1q: 105 },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preprocess::preprocess;

    #[test]
    fn bv_counts_match_paper() {
        assert_eq!(bv(14, 13).num_2q_gates(), 13);
        assert_eq!(bv(19, 18).num_2q_gates(), 18);
        assert_eq!(bv(30, 18).num_2q_gates(), 18);
        assert_eq!(bv(70, 36).num_2q_gates(), 36);
    }

    #[test]
    fn bv_secret_spread_is_even() {
        let c = bv(30, 18);
        // CX controls should span the data register, not cluster at the start.
        let pairs = c.interaction_pairs();
        let controls: Vec<usize> = pairs.iter().map(|&(a, _)| a).collect();
        assert!(controls.iter().min().unwrap() < &5);
        assert!(controls.iter().max().unwrap() > &24);
    }

    #[test]
    fn ghz_and_cat_counts() {
        assert_eq!(ghz(23).num_2q_gates(), 22);
        assert_eq!(cat(22).num_2q_gates(), 21);
        assert_eq!(cat(22).name(), "cat_n22");
    }

    #[test]
    fn ghz_1q_count_after_preprocessing_matches_paper() {
        // Paper reports ghz_n23 as (22, 45): 2 per CX target + initial H.
        let s = preprocess(&ghz(23));
        assert_eq!(s.num_2q_gates(), 22);
        assert_eq!(s.num_1q_gates(), 45);
    }

    #[test]
    fn ising_counts_match_paper() {
        assert_eq!(ising(42).num_2q_gates(), 82);
        assert_eq!(ising(98).num_2q_gates(), 194);
    }

    #[test]
    fn ising_parallelism_at_n98() {
        // Paper: 49 2Q gates execute simultaneously in ising_n98.
        let s = preprocess(&ising(98));
        assert_eq!(s.max_parallelism(), 49);
    }

    #[test]
    fn qft_counts_match_paper() {
        assert_eq!(qft(18).num_2q_gates(), 153); // CPs; each lowers to 2 CZ
        let s = preprocess(&qft(18));
        assert_eq!(s.num_2q_gates(), 306);
    }

    #[test]
    fn suite_has_17_entries_with_paper_names() {
        let suite = paper_suite();
        assert_eq!(suite.len(), 17);
        let names: Vec<&str> = suite.iter().map(|e| e.circuit.name()).collect();
        assert!(names.contains(&"ising_n98"));
        assert!(names.contains(&"qft_n18"));
        assert!(names.contains(&"wstate_n27"));
    }

    #[test]
    fn formulaic_circuits_match_paper_2q_exactly() {
        for e in paper_suite() {
            let name = e.circuit.name();
            if name.starts_with("bv")
                || name.starts_with("ghz")
                || name.starts_with("cat")
                || name.starts_with("ising")
                || name.starts_with("qft")
            {
                let s = preprocess(&e.circuit);
                assert_eq!(s.num_2q_gates(), e.paper_2q, "{name}");
            }
        }
    }

    #[test]
    fn all_suite_circuits_preprocess_validly() {
        for e in paper_suite() {
            let s = preprocess(&e.circuit);
            assert!(s.validate().is_ok(), "{}", e.circuit.name());
            assert!(s.num_stages() > 0);
        }
    }

    #[test]
    fn toffoli_heavy_circuits_are_close_to_paper() {
        // Textbook decompositions come within 25% of Qiskit-O3's counts.
        for e in paper_suite() {
            let s = preprocess(&e.circuit);
            let got = s.num_2q_gates() as f64;
            let want = e.paper_2q as f64;
            assert!(
                (got - want).abs() / want <= 0.25,
                "{}: got {got}, paper {want}",
                e.circuit.name()
            );
        }
    }

    #[test]
    #[should_panic(expected = "odd qubit count")]
    fn swap_test_rejects_even() {
        swap_test(24);
    }

    #[test]
    fn wstate_matches_paper_2q_count() {
        let c = wstate(27);
        assert_eq!(c.num_2q_gates(), 52); // 2 per cascade step, paper: 52
    }

    #[test]
    fn multiply_and_seca_near_paper_counts() {
        assert_eq!(multiply().num_2q_gates(), 40);
        let s = seca().num_2q_gates();
        assert!((s as i64 - 80).unsigned_abs() <= 8, "seca 2Q = {s}");
    }
}
