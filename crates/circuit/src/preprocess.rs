//! Preprocessing: resynthesis to {CZ, U3}, 1Q optimization, ASAP staging.
//!
//! This reproduces the paper's preprocessing step (Sec. IV, Fig. 4):
//!
//! 1. **Resynthesis** — every input gate is lowered to the hardware set
//!    {CZ, U3}: CX becomes H·CZ·H, SWAP becomes three CX, controlled-phase
//!    becomes two CX plus phases.
//! 2. **1Q optimization** — runs of adjacent single-qubit gates are merged by
//!    multiplying their 2×2 unitaries; the product is emitted as one U3 (or
//!    dropped entirely when it is the identity up to global phase).
//! 3. **ASAP scheduling** — each CZ is assigned the earliest Rydberg stage
//!    after all its dependencies, so each qubit joins at most one gate per
//!    stage.

use crate::circuit::Circuit;
use crate::complex::Mat2;
use crate::gate::{decompose_u3, Gate, OneQGate, TwoQKind};
use crate::stages::{Gate2, RydbergStage, StagedCircuit, U3Op};

/// Tolerance below which a merged 1Q unitary counts as the identity.
const IDENTITY_TOL: f64 = 1e-9;

/// A gate lowered to the {1Q-unitary, CZ} set.
#[derive(Debug, Clone, Copy)]
enum Lowered {
    OneQ { gate: OneQGate, qubit: usize },
    Cz { a: usize, b: usize },
}

fn lower(circuit: &Circuit) -> Vec<Lowered> {
    let mut out = Vec::with_capacity(circuit.num_gates() * 2);
    for g in circuit.gates() {
        match *g {
            Gate::OneQ { gate, qubit } => out.push(Lowered::OneQ { gate, qubit }),
            Gate::TwoQ { kind, a, b } => lower_2q(kind, a, b, &mut out),
        }
    }
    out
}

fn lower_2q(kind: TwoQKind, a: usize, b: usize, out: &mut Vec<Lowered>) {
    match kind {
        TwoQKind::Cz => out.push(Lowered::Cz { a, b }),
        TwoQKind::Cx => {
            // CX(a→b) = H(b) · CZ(a,b) · H(b).
            out.push(Lowered::OneQ { gate: OneQGate::H, qubit: b });
            out.push(Lowered::Cz { a, b });
            out.push(Lowered::OneQ { gate: OneQGate::H, qubit: b });
        }
        TwoQKind::Swap => {
            // SWAP = CX(a,b) CX(b,a) CX(a,b).
            lower_2q(TwoQKind::Cx, a, b, out);
            lower_2q(TwoQKind::Cx, b, a, out);
            lower_2q(TwoQKind::Cx, a, b, out);
        }
        TwoQKind::Cp(theta) => {
            // CP(θ) = P(θ/2)@a · CX(a,b) · P(-θ/2)@b · CX(a,b) · P(θ/2)@b.
            out.push(Lowered::OneQ { gate: OneQGate::Phase(theta / 2.0), qubit: a });
            lower_2q(TwoQKind::Cx, a, b, out);
            out.push(Lowered::OneQ { gate: OneQGate::Phase(-theta / 2.0), qubit: b });
            lower_2q(TwoQKind::Cx, a, b, out);
            out.push(Lowered::OneQ { gate: OneQGate::Phase(theta / 2.0), qubit: b });
        }
    }
}

/// Preprocesses a circuit into a [`StagedCircuit`] over {CZ, U3}.
///
/// The output satisfies [`StagedCircuit::validate`] by construction, and its
/// unitary equals the input's up to global phase (verified end-to-end by the
/// `zac-sim` test-suite).
///
/// # Example
///
/// ```
/// use zac_circuit::{preprocess::preprocess, Circuit};
/// let mut c = Circuit::new("bell", 2);
/// c.h(0).cx(0, 1);
/// let staged = preprocess(&c);
/// assert_eq!(staged.num_stages(), 1);
/// assert_eq!(staged.num_2q_gates(), 1);
/// // H(0) and the CX's basis-change H(1) merge into the stage's pre-1Q list.
/// assert_eq!(staged.stages[0].pre_1q.len(), 2);
/// ```
pub fn preprocess(circuit: &Circuit) -> StagedCircuit {
    let n = circuit.num_qubits();
    let lowered = lower(circuit);

    let mut pending: Vec<Mat2> = vec![Mat2::IDENTITY; n];
    let mut stage_avail: Vec<usize> = vec![0; n];
    let mut stages: Vec<RydbergStage> = Vec::new();
    let mut next_id = 0usize;

    let flush = |q: usize, pending: &mut Vec<Mat2>| -> Option<U3Op> {
        let u = pending[q];
        pending[q] = Mat2::IDENTITY;
        if u.approx_eq_up_to_phase(Mat2::IDENTITY, IDENTITY_TOL) {
            return None;
        }
        let (theta, phi, lambda, _gamma) = decompose_u3(u);
        Some(U3Op { qubit: q, theta, phi, lambda })
    };

    for lg in lowered {
        match lg {
            Lowered::OneQ { gate, qubit } => {
                pending[qubit] = gate.matrix().mul(pending[qubit]);
            }
            Lowered::Cz { a, b } => {
                let t = stage_avail[a].max(stage_avail[b]);
                while stages.len() <= t {
                    stages.push(RydbergStage::default());
                }
                for q in [a, b] {
                    if let Some(op) = flush(q, &mut pending) {
                        stages[t].pre_1q.push(op);
                    }
                }
                let (lo, hi) = (a.min(b), a.max(b));
                stages[t].gates.push(Gate2 { id: next_id, a: lo, b: hi });
                next_id += 1;
                stage_avail[a] = t + 1;
                stage_avail[b] = t + 1;
            }
        }
    }

    let mut trailing_1q = Vec::new();
    for q in 0..n {
        if let Some(op) = flush(q, &mut pending) {
            trailing_1q.push(op);
        }
    }

    let staged =
        StagedCircuit { name: circuit.name().to_owned(), num_qubits: n, stages, trailing_1q };
    debug_assert!(staged.validate().is_ok());
    staged
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bell_circuit() {
        let mut c = Circuit::new("bell", 2);
        c.h(0).cx(0, 1);
        let s = preprocess(&c);
        assert_eq!(s.num_stages(), 1);
        assert_eq!(s.num_2q_gates(), 1);
        // H(0) stays; H(1) pre; trailing H(1) after CZ.
        assert_eq!(s.stages[0].pre_1q.len(), 2);
        assert_eq!(s.trailing_1q.len(), 1);
        assert!(s.validate().is_ok());
    }

    #[test]
    fn adjacent_inverse_gates_cancel() {
        let mut c = Circuit::new("cancel", 2);
        c.h(0).h(0).x(1).x(1).cz(0, 1);
        let s = preprocess(&c);
        assert_eq!(s.num_1q_gates(), 0, "H·H and X·X are identity");
        assert_eq!(s.num_2q_gates(), 1);
    }

    #[test]
    fn hh_between_sequential_cx_cancels() {
        // Two CX with the same target: the basis-change H's between the CZs
        // cancel pairwise, a key 1Q-count optimization.
        let mut c = Circuit::new("chain", 3);
        c.cx(0, 2).cx(1, 2);
        let s = preprocess(&c);
        assert_eq!(s.num_2q_gates(), 2);
        // H(2) before first CZ, H·H between cancels, H(2) after second.
        assert_eq!(s.num_1q_gates(), 2);
        assert_eq!(s.num_stages(), 2);
    }

    #[test]
    fn asap_packs_disjoint_gates() {
        let mut c = Circuit::new("par", 4);
        c.cz(0, 1).cz(2, 3).cz(1, 2);
        let s = preprocess(&c);
        assert_eq!(s.num_stages(), 2);
        assert_eq!(s.stages[0].gates.len(), 2);
        assert_eq!(s.stages[1].gates.len(), 1);
    }

    #[test]
    fn asap_respects_dependencies() {
        let mut c = Circuit::new("dep", 3);
        c.cz(0, 1).cz(0, 1).cz(0, 2);
        let s = preprocess(&c);
        assert_eq!(s.num_stages(), 3, "same-pair gates cannot share a stage");
    }

    #[test]
    fn swap_lowering_gate_count() {
        let mut c = Circuit::new("swap", 2);
        c.swap(0, 1);
        let s = preprocess(&c);
        assert_eq!(s.num_2q_gates(), 3);
        assert_eq!(s.num_stages(), 3);
    }

    #[test]
    fn cp_lowering_gate_count() {
        let mut c = Circuit::new("cp", 2);
        c.cp(0.7, 0, 1);
        let s = preprocess(&c);
        assert_eq!(s.num_2q_gates(), 2);
    }

    #[test]
    fn running_example_from_paper_fig4() {
        // Fig. 4/5: stages l2 = {(q0,q1), (q3,q4)}, l4 = {(q1,q2), (q3,q5), (q0,q4)}.
        let mut c = Circuit::new("fig4", 6);
        c.cz(0, 1).cz(3, 4).cz(1, 2).cz(3, 5).cz(0, 4);
        let s = preprocess(&c);
        assert_eq!(s.num_stages(), 2);
        let stage0: Vec<(usize, usize)> = s.stages[0].gates.iter().map(|g| (g.a, g.b)).collect();
        let stage1: Vec<(usize, usize)> = s.stages[1].gates.iter().map(|g| (g.a, g.b)).collect();
        assert_eq!(stage0, vec![(0, 1), (3, 4)]);
        assert_eq!(stage1, vec![(1, 2), (3, 5), (0, 4)]);
    }

    #[test]
    fn gate_ids_are_sequential() {
        let mut c = Circuit::new("ids", 4);
        c.cz(0, 1).cz(2, 3).cz(0, 2);
        let s = preprocess(&c);
        let mut ids: Vec<usize> = s.gates_with_stage().map(|(_, g)| g.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn trailing_rotations_collected() {
        let mut c = Circuit::new("trail", 2);
        c.cz(0, 1).rz(0.3, 0).rx(0.2, 1);
        let s = preprocess(&c);
        assert_eq!(s.trailing_1q.len(), 2);
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        fn arb_circuit() -> impl Strategy<Value = Circuit> {
            (2usize..5).prop_flat_map(|n| {
                let gate = prop_oneof![
                    (0..n).prop_map(|q| (0usize, q, 0usize)),       // H
                    (0..n).prop_map(|q| (1usize, q, 0usize)),       // T
                    (0..n, 0..n).prop_map(|(a, b)| (2usize, a, b)), // CX
                    (0..n, 0..n).prop_map(|(a, b)| (3usize, a, b)), // CZ
                ];
                proptest::collection::vec(gate, 0..20).prop_map(move |ops| {
                    let mut c = Circuit::new("rand", n);
                    for (k, a, b) in ops {
                        match k {
                            0 => {
                                c.h(a);
                            }
                            1 => {
                                c.t(a);
                            }
                            2 if a != b => {
                                c.cx(a, b);
                            }
                            3 if a != b => {
                                c.cz(a, b);
                            }
                            _ => {}
                        }
                    }
                    c
                })
            })
        }

        proptest! {
            #[test]
            fn staged_output_always_valid(c in arb_circuit()) {
                let s = preprocess(&c);
                prop_assert!(s.validate().is_ok());
                // CZ count is preserved by lowering CX→CZ 1:1.
                prop_assert_eq!(s.num_2q_gates(), c.num_2q_gates());
            }

            #[test]
            fn stage_count_is_at_most_gate_count(c in arb_circuit()) {
                let s = preprocess(&c);
                prop_assert!(s.num_stages() <= c.num_2q_gates().max(1));
            }
        }
    }
}
