//! Staged circuits: the output of preprocessing (paper Fig. 4).
//!
//! After resynthesis to {CZ, U3} and 1Q-gate optimization, the circuit is
//! organized into *Rydberg stages*: sets of CZ gates that execute under one
//! Rydberg exposure, with the invariant that each qubit participates in at
//! most one gate per stage. U3 gates are attached to the stage they precede.

use std::collections::HashSet;
use std::fmt;

/// A hardware 1Q gate `U3(θ, φ, λ)` on a specific qubit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct U3Op {
    /// Target qubit.
    pub qubit: usize,
    /// θ parameter.
    pub theta: f64,
    /// φ parameter.
    pub phi: f64,
    /// λ parameter.
    pub lambda: f64,
}

/// A CZ gate within a staged circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Gate2 {
    /// Unique id within the staged circuit (program order).
    pub id: usize,
    /// First qubit (the smaller index; CZ is symmetric).
    pub a: usize,
    /// Second qubit.
    pub b: usize,
}

impl Gate2 {
    /// Whether the gate acts on `q`.
    pub fn touches(&self, q: usize) -> bool {
        self.a == q || self.b == q
    }

    /// The other operand of the gate, given one of its qubits.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not an operand.
    pub fn other(&self, q: usize) -> usize {
        if q == self.a {
            self.b
        } else {
            assert_eq!(q, self.b, "qubit {q} not in gate {self:?}");
            self.a
        }
    }
}

/// One Rydberg stage: optional preceding 1Q gates, then parallel CZs.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RydbergStage {
    /// U3 gates scheduled before this stage's Rydberg exposure.
    pub pre_1q: Vec<U3Op>,
    /// CZ gates executed in this stage (disjoint qubit sets).
    pub gates: Vec<Gate2>,
}

/// Invariant violations detected by [`StagedCircuit::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StageError {
    /// A qubit appears in two gates of one stage.
    QubitConflict {
        /// The stage index.
        stage: usize,
        /// The conflicting qubit.
        qubit: usize,
    },
    /// A qubit index is out of range.
    QubitOutOfRange {
        /// The offending qubit.
        qubit: usize,
    },
    /// Two gates share an id.
    DuplicateGateId {
        /// The repeated id.
        id: usize,
    },
}

impl fmt::Display for StageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::QubitConflict { stage, qubit } => {
                write!(f, "qubit {qubit} used twice in stage {stage}")
            }
            Self::QubitOutOfRange { qubit } => write!(f, "qubit {qubit} out of range"),
            Self::DuplicateGateId { id } => write!(f, "duplicate gate id {id}"),
        }
    }
}

impl std::error::Error for StageError {}

/// A preprocessed circuit: Rydberg stages over the {CZ, U3} gate set.
///
/// Produced by [`crate::preprocess::preprocess`]; consumed by the placement
/// and scheduling stages of every compiler in this workspace.
#[derive(Debug, Clone, PartialEq)]
pub struct StagedCircuit {
    /// Source circuit name.
    pub name: String,
    /// Number of qubits.
    pub num_qubits: usize,
    /// The Rydberg stages, in execution order.
    pub stages: Vec<RydbergStage>,
    /// U3 gates after the final Rydberg stage.
    pub trailing_1q: Vec<U3Op>,
}

impl StagedCircuit {
    /// Total CZ count (`g2` in the fidelity model).
    pub fn num_2q_gates(&self) -> usize {
        self.stages.iter().map(|s| s.gates.len()).sum()
    }

    /// Total U3 count (`g1` in the fidelity model).
    pub fn num_1q_gates(&self) -> usize {
        self.stages.iter().map(|s| s.pre_1q.len()).sum::<usize>() + self.trailing_1q.len()
    }

    /// Number of Rydberg stages.
    pub fn num_stages(&self) -> usize {
        self.stages.len()
    }

    /// Largest number of parallel CZs in any stage.
    pub fn max_parallelism(&self) -> usize {
        self.stages.iter().map(|s| s.gates.len()).max().unwrap_or(0)
    }

    /// All CZ gates with their stage index, in stage order.
    pub fn gates_with_stage(&self) -> impl Iterator<Item = (usize, &Gate2)> + '_ {
        self.stages.iter().enumerate().flat_map(|(t, s)| s.gates.iter().map(move |g| (t, g)))
    }

    /// The interaction multigraph: one `(a, b)` entry per CZ, in stage order.
    /// Used by the Enola baseline's edge-coloring scheduler.
    pub fn interaction_multigraph(&self) -> Vec<(usize, usize)> {
        self.gates_with_stage().map(|(_, g)| (g.a, g.b)).collect()
    }

    /// Returns a copy where no stage holds more than `max` gates: oversized
    /// stages are split into consecutive chunks (their `pre_1q` gates stay
    /// with the first chunk).
    ///
    /// Used when a stage's parallelism exceeds the architecture's Rydberg
    /// site count — e.g. the FTQC hIQP workload, whose 64-gate CNOT layers
    /// split into ⌈64/15⌉ = 5 exposures on the 15-site logical architecture
    /// (paper Sec. VIII).
    ///
    /// # Panics
    ///
    /// Panics if `max == 0`.
    pub fn with_max_stage_width(&self, max: usize) -> StagedCircuit {
        assert!(max > 0, "stage width must be positive");
        let mut stages = Vec::new();
        for stage in &self.stages {
            if stage.gates.len() <= max {
                stages.push(stage.clone());
            } else {
                for (i, chunk) in stage.gates.chunks(max).enumerate() {
                    stages.push(RydbergStage {
                        pre_1q: if i == 0 { stage.pre_1q.clone() } else { Vec::new() },
                        gates: chunk.to_vec(),
                    });
                }
            }
        }
        StagedCircuit {
            name: self.name.clone(),
            num_qubits: self.num_qubits,
            stages,
            trailing_1q: self.trailing_1q.clone(),
        }
    }

    /// Checks the staged-circuit invariants.
    ///
    /// # Errors
    ///
    /// A [`StageError`] naming the first violated invariant.
    pub fn validate(&self) -> Result<(), StageError> {
        let mut ids = HashSet::new();
        for (t, stage) in self.stages.iter().enumerate() {
            let mut used = HashSet::new();
            for g in &stage.gates {
                for q in [g.a, g.b] {
                    if q >= self.num_qubits {
                        return Err(StageError::QubitOutOfRange { qubit: q });
                    }
                    if !used.insert(q) {
                        return Err(StageError::QubitConflict { stage: t, qubit: q });
                    }
                }
                if !ids.insert(g.id) {
                    return Err(StageError::DuplicateGateId { id: g.id });
                }
            }
            for op in &stage.pre_1q {
                if op.qubit >= self.num_qubits {
                    return Err(StageError::QubitOutOfRange { qubit: op.qubit });
                }
            }
        }
        for op in &self.trailing_1q {
            if op.qubit >= self.num_qubits {
                return Err(StageError::QubitOutOfRange { qubit: op.qubit });
            }
        }
        Ok(())
    }
}

impl fmt::Display for StagedCircuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} qubits, {} stages, {} CZ, {} U3",
            self.name,
            self.num_qubits,
            self.num_stages(),
            self.num_2q_gates(),
            self.num_1q_gates()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> StagedCircuit {
        StagedCircuit {
            name: "s".into(),
            num_qubits: 4,
            stages: vec![
                RydbergStage {
                    pre_1q: vec![U3Op { qubit: 0, theta: 1.0, phi: 0.0, lambda: 0.0 }],
                    gates: vec![Gate2 { id: 0, a: 0, b: 1 }, Gate2 { id: 1, a: 2, b: 3 }],
                },
                RydbergStage { pre_1q: vec![], gates: vec![Gate2 { id: 2, a: 1, b: 2 }] },
            ],
            trailing_1q: vec![U3Op { qubit: 3, theta: 0.5, phi: 0.0, lambda: 0.0 }],
        }
    }

    #[test]
    fn counts() {
        let s = sample();
        assert_eq!(s.num_2q_gates(), 3);
        assert_eq!(s.num_1q_gates(), 2);
        assert_eq!(s.num_stages(), 2);
        assert_eq!(s.max_parallelism(), 2);
        assert!(s.validate().is_ok());
    }

    #[test]
    fn gate_other() {
        let g = Gate2 { id: 0, a: 2, b: 5 };
        assert_eq!(g.other(2), 5);
        assert_eq!(g.other(5), 2);
        assert!(g.touches(2) && g.touches(5) && !g.touches(3));
    }

    #[test]
    #[should_panic(expected = "not in gate")]
    fn gate_other_panics() {
        Gate2 { id: 0, a: 2, b: 5 }.other(1);
    }

    #[test]
    fn validate_detects_conflict() {
        let mut s = sample();
        s.stages[0].gates.push(Gate2 { id: 9, a: 1, b: 3 });
        assert_eq!(s.validate().unwrap_err(), StageError::QubitConflict { stage: 0, qubit: 1 });
    }

    #[test]
    fn validate_detects_out_of_range() {
        let mut s = sample();
        s.trailing_1q.push(U3Op { qubit: 4, theta: 0.0, phi: 0.0, lambda: 0.0 });
        assert_eq!(s.validate().unwrap_err(), StageError::QubitOutOfRange { qubit: 4 });
    }

    #[test]
    fn validate_detects_duplicate_id() {
        let mut s = sample();
        s.stages[1].gates.push(Gate2 { id: 0, a: 0, b: 3 });
        assert_eq!(s.validate().unwrap_err(), StageError::DuplicateGateId { id: 0 });
    }

    #[test]
    fn interaction_multigraph_order() {
        let s = sample();
        assert_eq!(s.interaction_multigraph(), vec![(0, 1), (2, 3), (1, 2)]);
    }

    #[test]
    fn stage_splitting_respects_width() {
        let s = sample();
        let split = s.with_max_stage_width(1);
        assert_eq!(split.num_stages(), 3);
        assert!(split.stages.iter().all(|st| st.gates.len() <= 1));
        assert_eq!(split.num_2q_gates(), s.num_2q_gates());
        assert_eq!(split.num_1q_gates(), s.num_1q_gates());
        assert!(split.validate().is_ok());
        // pre-1Q gates stay with the first chunk.
        assert_eq!(split.stages[0].pre_1q.len(), 1);
        assert!(split.stages[1].pre_1q.is_empty());
    }

    #[test]
    fn stage_splitting_noop_when_wide_enough() {
        let s = sample();
        assert_eq!(s.with_max_stage_width(10), s);
    }

    #[test]
    #[should_panic(expected = "stage width must be positive")]
    fn stage_splitting_zero_panics() {
        sample().with_max_stage_width(0);
    }
}
