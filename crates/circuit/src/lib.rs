//! Quantum-circuit substrate for the ZAC reproduction.
//!
//! This crate provides everything the compilers consume:
//!
//! * [`Circuit`] — the input circuit language (common textbook gates);
//! * [`preprocess::preprocess`] — resynthesis to the hardware set {CZ, U3},
//!   single-qubit gate merging, and ASAP Rydberg-stage scheduling
//!   (paper Sec. IV, Fig. 4);
//! * [`stages::StagedCircuit`] — the preprocessed form every compiler works
//!   on;
//! * [`bench_circuits`] — generators for the paper's 17-circuit QASMBench
//!   evaluation suite;
//! * [`qasm`] — OpenQASM 2.0 import/export (qelib1 vocabulary, register
//!   broadcast, user gate definitions), the real-world input path;
//! * [`complex`] / [`gate`] — the small linear-algebra layer used to merge
//!   and re-decompose 1Q unitaries.
//!
//! # Example
//!
//! ```
//! use zac_circuit::{bench_circuits, preprocess::preprocess};
//!
//! let circuit = bench_circuits::ghz(23);
//! let staged = preprocess(&circuit);
//! assert_eq!(staged.num_2q_gates(), 22);
//! assert_eq!(staged.num_stages(), 22); // a CX chain is fully sequential
//! ```

pub mod bench_circuits;
pub mod circuit;
pub mod complex;
pub mod fingerprint;
pub mod gate;
pub mod preprocess;
pub mod qasm;
pub mod stages;

pub use circuit::{Circuit, CircuitError};
pub use fingerprint::Fingerprint;
pub use gate::{Gate, OneQGate, TwoQKind};
pub use preprocess::preprocess;
pub use stages::{Gate2, RydbergStage, StageError, StagedCircuit, U3Op};
