//! The input circuit container and builder.

use crate::gate::{Gate, OneQGate, TwoQKind};
use std::fmt;

/// Error constructing a circuit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CircuitError {
    /// A gate references qubit `qubit` but the circuit has `num_qubits`.
    QubitOutOfRange {
        /// The offending qubit index.
        qubit: usize,
        /// The circuit's qubit count.
        num_qubits: usize,
    },
    /// A two-qubit gate was applied to identical operands.
    SameQubitTwice {
        /// The repeated operand.
        qubit: usize,
    },
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::QubitOutOfRange { qubit, num_qubits } => {
                write!(f, "qubit {qubit} out of range for {num_qubits}-qubit circuit")
            }
            Self::SameQubitTwice { qubit } => {
                write!(f, "two-qubit gate applied twice to qubit {qubit}")
            }
        }
    }
}

impl std::error::Error for CircuitError {}

/// A quantum circuit: an ordered list of gates over `num_qubits` qubits.
///
/// Builder methods append gates and panic on invalid indices (the typical
/// usage is programmatic generation); [`Circuit::try_push`] offers the
/// fallible alternative.
///
/// # Example
///
/// ```
/// use zac_circuit::Circuit;
/// let mut c = Circuit::new("bell", 2);
/// c.h(0).cx(0, 1);
/// assert_eq!(c.num_gates(), 2);
/// assert_eq!(c.num_2q_gates(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Circuit {
    name: String,
    num_qubits: usize,
    gates: Vec<Gate>,
}

impl Circuit {
    /// Creates an empty circuit.
    pub fn new(name: impl Into<String>, num_qubits: usize) -> Self {
        Self { name: name.into(), num_qubits, gates: Vec::new() }
    }

    /// The circuit's name (used in reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The gate list in program order.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Total gate count.
    pub fn num_gates(&self) -> usize {
        self.gates.len()
    }

    /// Number of two-qubit gates.
    pub fn num_2q_gates(&self) -> usize {
        self.gates.iter().filter(|g| matches!(g, Gate::TwoQ { .. })).count()
    }

    /// Number of single-qubit gates.
    pub fn num_1q_gates(&self) -> usize {
        self.gates.iter().filter(|g| matches!(g, Gate::OneQ { .. })).count()
    }

    /// Appends a gate, validating operands.
    ///
    /// # Errors
    ///
    /// [`CircuitError`] if a qubit index is out of range or a 2Q gate uses
    /// the same qubit twice.
    pub fn try_push(&mut self, gate: Gate) -> Result<&mut Self, CircuitError> {
        match gate {
            Gate::OneQ { qubit, .. } => {
                if qubit >= self.num_qubits {
                    return Err(CircuitError::QubitOutOfRange {
                        qubit,
                        num_qubits: self.num_qubits,
                    });
                }
            }
            Gate::TwoQ { a, b, .. } => {
                for q in [a, b] {
                    if q >= self.num_qubits {
                        return Err(CircuitError::QubitOutOfRange {
                            qubit: q,
                            num_qubits: self.num_qubits,
                        });
                    }
                }
                if a == b {
                    return Err(CircuitError::SameQubitTwice { qubit: a });
                }
            }
        }
        self.gates.push(gate);
        Ok(self)
    }

    /// Appends a gate.
    ///
    /// # Panics
    ///
    /// Panics on invalid operands; see [`Circuit::try_push`].
    pub fn push(&mut self, gate: Gate) -> &mut Self {
        self.try_push(gate).expect("invalid gate");
        self
    }

    /// Appends a single-qubit gate.
    ///
    /// # Panics
    ///
    /// Panics if `qubit` is out of range.
    pub fn one_q(&mut self, gate: OneQGate, qubit: usize) -> &mut Self {
        self.push(Gate::OneQ { gate, qubit })
    }

    /// Appends a Hadamard.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn h(&mut self, q: usize) -> &mut Self {
        self.one_q(OneQGate::H, q)
    }

    /// Appends a Pauli-X.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn x(&mut self, q: usize) -> &mut Self {
        self.one_q(OneQGate::X, q)
    }

    /// Appends a Pauli-Z.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn z(&mut self, q: usize) -> &mut Self {
        self.one_q(OneQGate::Z, q)
    }

    /// Appends a T gate.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn t(&mut self, q: usize) -> &mut Self {
        self.one_q(OneQGate::T, q)
    }

    /// Appends a T† gate.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn tdg(&mut self, q: usize) -> &mut Self {
        self.one_q(OneQGate::Tdg, q)
    }

    /// Appends an Rx rotation.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn rx(&mut self, theta: f64, q: usize) -> &mut Self {
        self.one_q(OneQGate::Rx(theta), q)
    }

    /// Appends an Ry rotation.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn ry(&mut self, theta: f64, q: usize) -> &mut Self {
        self.one_q(OneQGate::Ry(theta), q)
    }

    /// Appends an Rz rotation.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn rz(&mut self, theta: f64, q: usize) -> &mut Self {
        self.one_q(OneQGate::Rz(theta), q)
    }

    /// Appends a CX (CNOT) with control `c` and target `t`.
    ///
    /// # Panics
    ///
    /// Panics on invalid operands.
    pub fn cx(&mut self, c: usize, t: usize) -> &mut Self {
        self.push(Gate::TwoQ { kind: TwoQKind::Cx, a: c, b: t })
    }

    /// Appends a CZ.
    ///
    /// # Panics
    ///
    /// Panics on invalid operands.
    pub fn cz(&mut self, a: usize, b: usize) -> &mut Self {
        self.push(Gate::TwoQ { kind: TwoQKind::Cz, a, b })
    }

    /// Appends a controlled-phase gate.
    ///
    /// # Panics
    ///
    /// Panics on invalid operands.
    pub fn cp(&mut self, theta: f64, a: usize, b: usize) -> &mut Self {
        self.push(Gate::TwoQ { kind: TwoQKind::Cp(theta), a, b })
    }

    /// Appends a SWAP.
    ///
    /// # Panics
    ///
    /// Panics on invalid operands.
    pub fn swap(&mut self, a: usize, b: usize) -> &mut Self {
        self.push(Gate::TwoQ { kind: TwoQKind::Swap, a, b })
    }

    /// Appends the standard 6-CX Toffoli decomposition with controls
    /// `a`, `b` and target `c`.
    ///
    /// # Panics
    ///
    /// Panics on invalid operands.
    pub fn ccx_decomposed(&mut self, a: usize, b: usize, c: usize) -> &mut Self {
        self.h(c)
            .cx(b, c)
            .tdg(c)
            .cx(a, c)
            .t(c)
            .cx(b, c)
            .tdg(c)
            .cx(a, c)
            .t(b)
            .t(c)
            .h(c)
            .cx(a, b)
            .t(a)
            .tdg(b)
            .cx(a, b)
    }

    /// Appends a controlled-SWAP (Fredkin) as CX–Toffoli–CX.
    ///
    /// # Panics
    ///
    /// Panics on invalid operands.
    pub fn cswap_decomposed(&mut self, ctrl: usize, x: usize, y: usize) -> &mut Self {
        self.cx(y, x).ccx_decomposed(ctrl, x, y).cx(y, x)
    }

    /// Appends a controlled-Ry(θ) using the 2-CX identity.
    ///
    /// # Panics
    ///
    /// Panics on invalid operands.
    pub fn cry_decomposed(&mut self, theta: f64, c: usize, t: usize) -> &mut Self {
        self.ry(theta / 2.0, t).cx(c, t).ry(-theta / 2.0, t).cx(c, t)
    }

    /// Appends the qelib1 controlled-Y decomposition (`sdg t; cx c,t; s t`).
    ///
    /// # Panics
    ///
    /// Panics on invalid operands.
    pub fn cy_decomposed(&mut self, c: usize, t: usize) -> &mut Self {
        self.one_q(OneQGate::Sdg, t).cx(c, t).one_q(OneQGate::S, t)
    }

    /// Appends the qelib1 controlled-Hadamard decomposition (2 CX).
    ///
    /// # Panics
    ///
    /// Panics on invalid operands.
    pub fn ch_decomposed(&mut self, c: usize, t: usize) -> &mut Self {
        self.h(t)
            .one_q(OneQGate::Sdg, t)
            .cx(c, t)
            .h(t)
            .t(t)
            .cx(c, t)
            .t(t)
            .h(t)
            .one_q(OneQGate::S, t)
            .x(t)
            .one_q(OneQGate::S, c)
    }

    /// Appends the qelib1 controlled-Rz(λ) decomposition (2 CX): on a set
    /// control the target sees exactly `Rz(λ)`.
    ///
    /// # Panics
    ///
    /// Panics on invalid operands.
    pub fn crz_decomposed(&mut self, lambda: f64, c: usize, t: usize) -> &mut Self {
        self.rz(lambda / 2.0, t).cx(c, t).rz(-lambda / 2.0, t).cx(c, t)
    }

    /// Appends the qelib1 controlled-U3(θ, φ, λ) decomposition (2 CX).
    ///
    /// # Panics
    ///
    /// Panics on invalid operands.
    pub fn cu3_decomposed(
        &mut self,
        theta: f64,
        phi: f64,
        lambda: f64,
        c: usize,
        t: usize,
    ) -> &mut Self {
        self.one_q(OneQGate::Phase((lambda + phi) / 2.0), c)
            .one_q(OneQGate::Phase((lambda - phi) / 2.0), t)
            .cx(c, t)
            .one_q(OneQGate::U3 { theta: -theta / 2.0, phi: 0.0, lambda: -(phi + lambda) / 2.0 }, t)
            .cx(c, t)
            .one_q(OneQGate::U3 { theta: theta / 2.0, phi, lambda: 0.0 }, t)
    }

    /// Appends the qelib1 √X decomposition (`sdg; h; sdg`), which equals
    /// `Rx(π/2)` = e^{-iπ/4}·SX (qelib1 defines `sx` with a global phase of
    /// π/4; exactness up to that phase is statevector-verified in
    /// `tests/corpus.rs`).
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn sx_decomposed(&mut self, q: usize) -> &mut Self {
        self.one_q(OneQGate::Sdg, q).h(q).one_q(OneQGate::Sdg, q)
    }

    /// Appends the qelib1 √X† decomposition (`s; h; s`), which equals
    /// `Rx(-π/2)` = e^{iπ/4}·SX†.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn sxdg_decomposed(&mut self, q: usize) -> &mut Self {
        self.one_q(OneQGate::S, q).h(q).one_q(OneQGate::S, q)
    }

    /// Appends the qelib1 ZZ-rotation decomposition (`cx; u1(θ) b; cx`),
    /// i.e. `diag(1, e^{iθ}, e^{iθ}, 1)` — qelib1's phase convention.
    ///
    /// # Panics
    ///
    /// Panics on invalid operands.
    pub fn rzz_decomposed(&mut self, theta: f64, a: usize, b: usize) -> &mut Self {
        self.cx(a, b).one_q(OneQGate::Phase(theta), b).cx(a, b)
    }

    /// The multiset of 2Q interaction pairs `(min, max)`, in program order.
    pub fn interaction_pairs(&self) -> Vec<(usize, usize)> {
        self.gates
            .iter()
            .filter_map(|g| match *g {
                Gate::TwoQ { a, b, .. } => Some((a.min(b), a.max(b))),
                Gate::OneQ { .. } => None,
            })
            .collect()
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}({} qubits, {} 2Q, {} 1Q)",
            self.name,
            self.num_qubits,
            self.num_2q_gates(),
            self.num_1q_gates()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_counts() {
        let mut c = Circuit::new("t", 3);
        c.h(0).cx(0, 1).cz(1, 2).rz(0.5, 2);
        assert_eq!(c.num_gates(), 4);
        assert_eq!(c.num_2q_gates(), 2);
        assert_eq!(c.num_1q_gates(), 2);
        assert_eq!(c.interaction_pairs(), vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn out_of_range_rejected() {
        let mut c = Circuit::new("t", 2);
        let err = c.try_push(Gate::OneQ { gate: OneQGate::H, qubit: 2 }).unwrap_err();
        assert_eq!(err, CircuitError::QubitOutOfRange { qubit: 2, num_qubits: 2 });
    }

    #[test]
    fn same_qubit_twice_rejected() {
        let mut c = Circuit::new("t", 2);
        let err = c.try_push(Gate::TwoQ { kind: TwoQKind::Cx, a: 1, b: 1 }).unwrap_err();
        assert_eq!(err, CircuitError::SameQubitTwice { qubit: 1 });
    }

    #[test]
    #[should_panic(expected = "invalid gate")]
    fn push_panics_on_invalid() {
        Circuit::new("t", 1).cx(0, 1);
    }

    #[test]
    fn toffoli_decomposition_shape() {
        let mut c = Circuit::new("ccx", 3);
        c.ccx_decomposed(0, 1, 2);
        assert_eq!(c.num_2q_gates(), 6);
        assert_eq!(c.num_1q_gates(), 9);
    }

    #[test]
    fn cswap_decomposition_shape() {
        let mut c = Circuit::new("cswap", 3);
        c.cswap_decomposed(0, 1, 2);
        assert_eq!(c.num_2q_gates(), 8);
    }

    #[test]
    fn qelib1_controlled_decomposition_shapes() {
        let mut c = Circuit::new("cy", 2);
        c.cy_decomposed(0, 1);
        assert_eq!((c.num_2q_gates(), c.num_1q_gates()), (1, 2));
        let mut c = Circuit::new("ch", 2);
        c.ch_decomposed(0, 1);
        assert_eq!((c.num_2q_gates(), c.num_1q_gates()), (2, 9));
        let mut c = Circuit::new("crz", 2);
        c.crz_decomposed(0.5, 0, 1);
        assert_eq!((c.num_2q_gates(), c.num_1q_gates()), (2, 2));
        let mut c = Circuit::new("cu3", 2);
        c.cu3_decomposed(0.1, 0.2, 0.3, 0, 1);
        assert_eq!((c.num_2q_gates(), c.num_1q_gates()), (2, 4));
        let mut c = Circuit::new("rzz", 2);
        c.rzz_decomposed(0.7, 0, 1);
        assert_eq!((c.num_2q_gates(), c.num_1q_gates()), (2, 1));
        let mut c = Circuit::new("sx", 1);
        c.sx_decomposed(0).sxdg_decomposed(0);
        assert_eq!((c.num_2q_gates(), c.num_1q_gates()), (0, 6));
    }

    #[test]
    fn display_shows_counts() {
        let mut c = Circuit::new("demo", 2);
        c.h(0).cx(0, 1);
        assert_eq!(c.to_string(), "demo(2 qubits, 1 2Q, 1 1Q)");
    }
}
