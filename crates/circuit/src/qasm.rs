//! OpenQASM 2.0 import/export.
//!
//! QASMBench — the paper's benchmark source — ships OpenQASM 2.0 files, so
//! this module provides the real-world input path: a parser covering the
//! `qelib1.inc` gate vocabulary the suite uses (with Toffoli/Fredkin lowered
//! through the standard decompositions) and an emitter that round-trips any
//! [`Circuit`].
//!
//! Supported statements: `OPENQASM 2.0;`, `include`, `qreg`, `creg`, gate
//! applications on explicit qubit operands, `barrier` (ignored), `measure`
//! (ignored — the paper's flow compiles the unitary part). Gate definitions
//! (`gate ... { }`) and classical control are not supported and produce a
//! clear error.

use crate::circuit::Circuit;
use crate::gate::OneQGate;
use crate::Gate;
use std::collections::HashMap;
use std::f64::consts::PI;
use std::fmt;

/// Parse error with 1-based line information.
#[derive(Debug, Clone, PartialEq)]
pub struct QasmError {
    /// 1-based source line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for QasmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "qasm parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for QasmError {}

fn err(line: usize, message: impl Into<String>) -> QasmError {
    QasmError { line, message: message.into() }
}

/// A tiny expression evaluator for gate parameters: numbers, `pi`, unary
/// minus, `+ - * /`, and parentheses.
fn eval_expr(src: &str, line: usize) -> Result<f64, QasmError> {
    struct P<'a> {
        s: &'a [u8],
        i: usize,
        line: usize,
    }
    impl P<'_> {
        fn peek(&self) -> Option<u8> {
            self.s.get(self.i).copied()
        }
        fn skip_ws(&mut self) {
            while matches!(self.peek(), Some(b' ') | Some(b'\t')) {
                self.i += 1;
            }
        }
        fn expr(&mut self) -> Result<f64, QasmError> {
            let mut v = self.term()?;
            loop {
                self.skip_ws();
                match self.peek() {
                    Some(b'+') => {
                        self.i += 1;
                        v += self.term()?;
                    }
                    Some(b'-') => {
                        self.i += 1;
                        v -= self.term()?;
                    }
                    _ => return Ok(v),
                }
            }
        }
        fn term(&mut self) -> Result<f64, QasmError> {
            let mut v = self.factor()?;
            loop {
                self.skip_ws();
                match self.peek() {
                    Some(b'*') => {
                        self.i += 1;
                        v *= self.factor()?;
                    }
                    Some(b'/') => {
                        self.i += 1;
                        v /= self.factor()?;
                    }
                    _ => return Ok(v),
                }
            }
        }
        fn factor(&mut self) -> Result<f64, QasmError> {
            self.skip_ws();
            match self.peek() {
                Some(b'-') => {
                    self.i += 1;
                    Ok(-self.factor()?)
                }
                Some(b'+') => {
                    self.i += 1;
                    self.factor()
                }
                Some(b'(') => {
                    self.i += 1;
                    let v = self.expr()?;
                    self.skip_ws();
                    if self.peek() == Some(b')') {
                        self.i += 1;
                        Ok(v)
                    } else {
                        Err(err(self.line, "missing ')' in expression"))
                    }
                }
                Some(c) if c == b'p' || c == b'P' => {
                    if self.s[self.i..].len() >= 2 && self.s[self.i + 1].eq_ignore_ascii_case(&b'i')
                    {
                        self.i += 2;
                        Ok(PI)
                    } else {
                        Err(err(self.line, "unknown identifier in expression"))
                    }
                }
                Some(c) if c.is_ascii_digit() || c == b'.' => {
                    let start = self.i;
                    while matches!(self.peek(), Some(c) if c.is_ascii_digit() || c == b'.' || c == b'e' || c == b'E')
                    {
                        self.i += 1;
                        // Allow exponent signs.
                        if matches!(self.s.get(self.i.wrapping_sub(1)), Some(b'e') | Some(b'E'))
                            && matches!(self.peek(), Some(b'+') | Some(b'-'))
                        {
                            self.i += 1;
                        }
                    }
                    std::str::from_utf8(&self.s[start..self.i])
                        .ok()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| err(self.line, "malformed number"))
                }
                _ => Err(err(self.line, "malformed expression")),
            }
        }
    }
    let mut p = P { s: src.as_bytes(), i: 0, line };
    let v = p.expr()?;
    p.skip_ws();
    if p.i != p.s.len() {
        return Err(err(line, format!("trailing characters in expression '{src}'")));
    }
    Ok(v)
}

/// Parses an OpenQASM 2.0 program into a [`Circuit`].
///
/// # Errors
///
/// [`QasmError`] with the offending line on unsupported or malformed input.
///
/// # Example
///
/// ```
/// let qasm = r#"
///     OPENQASM 2.0;
///     include "qelib1.inc";
///     qreg q[2];
///     h q[0];
///     cx q[0], q[1];
/// "#;
/// let c = zac_circuit::qasm::parse_qasm(qasm, "bell")?;
/// assert_eq!(c.num_qubits(), 2);
/// assert_eq!(c.num_2q_gates(), 1);
/// # Ok::<(), zac_circuit::qasm::QasmError>(())
/// ```
pub fn parse_qasm(source: &str, name: &str) -> Result<Circuit, QasmError> {
    // Register name → (offset, size).
    let mut regs: HashMap<String, (usize, usize)> = HashMap::new();
    let mut total_qubits = 0usize;
    let mut ops: Vec<(usize, String)> = Vec::new(); // (line, statement)

    // Strip comments, split on ';'.
    let mut cleaned = String::new();
    for (ln, raw) in source.lines().enumerate() {
        let line = match raw.find("//") {
            Some(p) => &raw[..p],
            None => raw,
        };
        cleaned.push_str(line);
        // Keep a line marker so statements know their origin.
        cleaned.push_str(&format!("\u{0}{}\u{0}", ln + 1));
    }
    let mut current_line = 1usize;
    for stmt in cleaned.split(';') {
        let mut text = String::new();
        for piece in stmt.split('\u{0}') {
            if let Ok(n) = piece.trim().parse::<usize>() {
                // A marker for line n sits at the end of line n, so content
                // after it belongs to line n+1.
                if text.trim().is_empty() {
                    current_line = n + 1;
                }
                // Markers inside a statement are skipped either way.
                continue;
            }
            text.push_str(piece);
            text.push(' ');
        }
        let text = text.trim().to_string();
        if !text.is_empty() {
            ops.push((current_line, text));
        }
    }

    // First pass: registers.
    for (line, stmt) in &ops {
        let stmt = stmt.trim();
        if let Some(rest) = stmt.strip_prefix("qreg") {
            let rest = rest.trim();
            let (rname, size) = parse_reg_decl(rest, *line)?;
            regs.insert(rname, (total_qubits, size));
            total_qubits += size;
        }
    }
    if total_qubits == 0 {
        return Err(err(1, "no qreg declaration found"));
    }

    let mut circuit = Circuit::new(name, total_qubits);
    let resolve = |operand: &str,
                   line: usize,
                   regs: &HashMap<String, (usize, usize)>|
     -> Result<usize, QasmError> {
        let operand = operand.trim();
        let open = operand
            .find('[')
            .ok_or_else(|| err(line, format!("expected indexed operand, got '{operand}'")))?;
        let close = operand.find(']').ok_or_else(|| err(line, "missing ']' in operand"))?;
        let rname = operand[..open].trim();
        let idx: usize = operand[open + 1..close]
            .trim()
            .parse()
            .map_err(|_| err(line, "malformed qubit index"))?;
        let &(offset, size) =
            regs.get(rname).ok_or_else(|| err(line, format!("unknown register '{rname}'")))?;
        if idx >= size {
            return Err(err(line, format!("index {idx} out of range for {rname}[{size}]")));
        }
        Ok(offset + idx)
    };

    for (line, stmt) in &ops {
        let line = *line;
        let stmt = stmt.trim();
        let lower = stmt.to_ascii_lowercase();
        if lower.starts_with("openqasm")
            || lower.starts_with("include")
            || lower.starts_with("qreg")
            || lower.starts_with("creg")
            || lower.starts_with("barrier")
            || lower.starts_with("measure")
            || stmt.is_empty()
        {
            continue;
        }
        if lower.starts_with("gate ") || lower.starts_with("if") || lower.starts_with("reset") {
            return Err(err(line, format!("unsupported statement: '{stmt}'")));
        }

        // gate_name[(params)] operand[, operand...]
        let (head, operands_str) = match stmt.find(|c: char| c.is_whitespace()) {
            Some(p) if !stmt[..p].contains('(') || stmt[..p].contains(')') => {
                (&stmt[..p], &stmt[p..])
            }
            _ => {
                // Parameterized gate: split after the closing paren.
                let close =
                    stmt.find(')').ok_or_else(|| err(line, "missing ')' in gate parameters"))?;
                (&stmt[..=close], &stmt[close + 1..])
            }
        };
        let (gate_name, params) = match head.find('(') {
            Some(p) => {
                let close =
                    head.rfind(')').ok_or_else(|| err(line, "missing ')' in parameters"))?;
                let list = &head[p + 1..close];
                let vals: Result<Vec<f64>, _> =
                    list.split(',').map(|e| eval_expr(e.trim(), line)).collect();
                (head[..p].trim(), vals?)
            }
            None => (head.trim(), Vec::new()),
        };
        let qubits: Result<Vec<usize>, _> = operands_str
            .split(',')
            .filter(|s| !s.trim().is_empty())
            .map(|o| resolve(o, line, &regs))
            .collect();
        let qubits = qubits?;

        apply_gate(&mut circuit, gate_name, &params, &qubits, line)?;
    }
    Ok(circuit)
}

fn parse_reg_decl(rest: &str, line: usize) -> Result<(String, usize), QasmError> {
    let open = rest.find('[').ok_or_else(|| err(line, "malformed qreg"))?;
    let close = rest.find(']').ok_or_else(|| err(line, "malformed qreg"))?;
    let name = rest[..open].trim().to_string();
    let size: usize =
        rest[open + 1..close].trim().parse().map_err(|_| err(line, "malformed qreg size"))?;
    if name.is_empty() || size == 0 {
        return Err(err(line, "malformed qreg declaration"));
    }
    Ok((name, size))
}

fn one(qubits: &[usize], line: usize) -> Result<usize, QasmError> {
    if qubits.len() == 1 {
        Ok(qubits[0])
    } else {
        Err(err(line, format!("expected 1 operand, got {}", qubits.len())))
    }
}

fn two(qubits: &[usize], line: usize) -> Result<(usize, usize), QasmError> {
    if qubits.len() == 2 {
        Ok((qubits[0], qubits[1]))
    } else {
        Err(err(line, format!("expected 2 operands, got {}", qubits.len())))
    }
}

fn three(qubits: &[usize], line: usize) -> Result<(usize, usize, usize), QasmError> {
    if qubits.len() == 3 {
        Ok((qubits[0], qubits[1], qubits[2]))
    } else {
        Err(err(line, format!("expected 3 operands, got {}", qubits.len())))
    }
}

fn param(params: &[f64], k: usize, line: usize, gate: &str) -> Result<f64, QasmError> {
    params.get(k).copied().ok_or_else(|| err(line, format!("{gate} needs {} parameter(s)", k + 1)))
}

fn apply_gate(
    c: &mut Circuit,
    gate: &str,
    params: &[f64],
    qubits: &[usize],
    line: usize,
) -> Result<(), QasmError> {
    match gate.to_ascii_lowercase().as_str() {
        "h" => c.h(one(qubits, line)?),
        "x" => c.x(one(qubits, line)?),
        "y" => c.one_q(OneQGate::Y, one(qubits, line)?),
        "z" => c.z(one(qubits, line)?),
        "s" => c.one_q(OneQGate::S, one(qubits, line)?),
        "sdg" => c.one_q(OneQGate::Sdg, one(qubits, line)?),
        "t" => c.t(one(qubits, line)?),
        "tdg" => c.tdg(one(qubits, line)?),
        "id" | "u0" => c, // identity
        "rx" => c.rx(param(params, 0, line, "rx")?, one(qubits, line)?),
        "ry" => c.ry(param(params, 0, line, "ry")?, one(qubits, line)?),
        "rz" => c.rz(param(params, 0, line, "rz")?, one(qubits, line)?),
        "p" | "u1" => c.one_q(OneQGate::Phase(param(params, 0, line, "u1")?), one(qubits, line)?),
        "u2" => {
            let phi = param(params, 0, line, "u2")?;
            let lambda = param(params, 1, line, "u2")?;
            c.one_q(OneQGate::U3 { theta: PI / 2.0, phi, lambda }, one(qubits, line)?)
        }
        "u3" | "u" => {
            let theta = param(params, 0, line, "u3")?;
            let phi = param(params, 1, line, "u3")?;
            let lambda = param(params, 2, line, "u3")?;
            c.one_q(OneQGate::U3 { theta, phi, lambda }, one(qubits, line)?)
        }
        "cx" | "cnot" => {
            let (a, b) = two(qubits, line)?;
            c.cx(a, b)
        }
        "cz" => {
            let (a, b) = two(qubits, line)?;
            c.cz(a, b)
        }
        "cp" | "cu1" => {
            let (a, b) = two(qubits, line)?;
            c.cp(param(params, 0, line, "cp")?, a, b)
        }
        "swap" => {
            let (a, b) = two(qubits, line)?;
            c.swap(a, b)
        }
        "ccx" | "toffoli" => {
            let (a, b, t) = three(qubits, line)?;
            c.ccx_decomposed(a, b, t)
        }
        "cswap" | "fredkin" => {
            let (a, b, t) = three(qubits, line)?;
            c.cswap_decomposed(a, b, t)
        }
        other => return Err(err(line, format!("unsupported gate '{other}'"))),
    };
    Ok(())
}

/// Emits a [`Circuit`] as OpenQASM 2.0.
///
/// # Example
///
/// ```
/// use zac_circuit::Circuit;
/// let mut c = Circuit::new("bell", 2);
/// c.h(0).cx(0, 1);
/// let qasm = zac_circuit::qasm::to_qasm(&c);
/// assert!(qasm.contains("cx q[0], q[1];"));
/// ```
pub fn to_qasm(circuit: &Circuit) -> String {
    let mut out = String::new();
    out.push_str("OPENQASM 2.0;\ninclude \"qelib1.inc\";\n");
    out.push_str(&format!("qreg q[{}];\n", circuit.num_qubits()));
    for g in circuit.gates() {
        match *g {
            Gate::OneQ { gate, qubit } => {
                let stmt = match gate {
                    OneQGate::H => "h".to_string(),
                    OneQGate::X => "x".to_string(),
                    OneQGate::Y => "y".to_string(),
                    OneQGate::Z => "z".to_string(),
                    OneQGate::S => "s".to_string(),
                    OneQGate::Sdg => "sdg".to_string(),
                    OneQGate::T => "t".to_string(),
                    OneQGate::Tdg => "tdg".to_string(),
                    OneQGate::Rx(t) => format!("rx({t})"),
                    OneQGate::Ry(t) => format!("ry({t})"),
                    OneQGate::Rz(t) => format!("rz({t})"),
                    OneQGate::Phase(t) => format!("u1({t})"),
                    OneQGate::U3 { theta, phi, lambda } => {
                        format!("u3({theta},{phi},{lambda})")
                    }
                };
                out.push_str(&format!("{stmt} q[{qubit}];\n"));
            }
            Gate::TwoQ { kind, a, b } => {
                let stmt = match kind {
                    crate::TwoQKind::Cx => format!("cx q[{a}], q[{b}];"),
                    crate::TwoQKind::Cz => format!("cz q[{a}], q[{b}];"),
                    crate::TwoQKind::Cp(t) => format!("cu1({t}) q[{a}], q[{b}];"),
                    crate::TwoQKind::Swap => format!("swap q[{a}], q[{b}];"),
                };
                out.push_str(&stmt);
                out.push('\n');
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_bell() {
        let c = parse_qasm(
            "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\nh q[0];\ncx q[0],q[1];\n",
            "bell",
        )
        .unwrap();
        assert_eq!(c.num_qubits(), 2);
        assert_eq!(c.num_1q_gates(), 1);
        assert_eq!(c.num_2q_gates(), 1);
    }

    #[test]
    fn parse_multiple_registers() {
        let c = parse_qasm("OPENQASM 2.0; qreg a[2]; qreg b[3]; cx a[1], b[0]; x b[2];", "regs")
            .unwrap();
        assert_eq!(c.num_qubits(), 5);
        // a[1] = global 1, b[0] = global 2, b[2] = global 4.
        assert_eq!(c.interaction_pairs(), vec![(1, 2)]);
    }

    #[test]
    fn parse_parameterized_gates() {
        let c = parse_qasm(
            "OPENQASM 2.0; qreg q[2]; rz(pi/4) q[0]; u3(1.5, -0.25, 2e-1) q[1]; cu1(pi/2) q[0], q[1];",
            "params",
        )
        .unwrap();
        assert_eq!(c.num_1q_gates(), 2);
        assert_eq!(c.num_2q_gates(), 1);
        match c.gates()[0] {
            Gate::OneQ { gate: OneQGate::Rz(t), .. } => {
                assert!((t - PI / 4.0).abs() < 1e-12)
            }
            ref g => panic!("unexpected {g:?}"),
        }
    }

    #[test]
    fn parse_expression_arithmetic() {
        assert!((eval_expr("pi/2", 1).unwrap() - PI / 2.0).abs() < 1e-12);
        assert!((eval_expr("-pi*3/4", 1).unwrap() + 3.0 * PI / 4.0).abs() < 1e-12);
        assert!((eval_expr("(1+2)*3", 1).unwrap() - 9.0).abs() < 1e-12);
        assert!((eval_expr("2e-1", 1).unwrap() - 0.2).abs() < 1e-12);
        assert!(eval_expr("pi+", 1).is_err());
        assert!(eval_expr("(1", 1).is_err());
    }

    #[test]
    fn comments_and_barriers_ignored() {
        let c = parse_qasm(
            "OPENQASM 2.0; // header\nqreg q[2];\nh q[0]; // do H\nbarrier q[0];\ncreg c[2];\nmeasure q[0] -> c[0];\n",
            "comments",
        )
        .unwrap();
        assert_eq!(c.num_gates(), 1);
    }

    #[test]
    fn ccx_lowered_on_parse() {
        let c = parse_qasm("OPENQASM 2.0; qreg q[3]; ccx q[0],q[1],q[2];", "ccx").unwrap();
        assert_eq!(c.num_2q_gates(), 6);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_qasm("OPENQASM 2.0;\nqreg q[2];\nbogus q[0];", "bad").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("bogus"));

        let e = parse_qasm("OPENQASM 2.0;\nqreg q[1];\nh q[4];", "oob").unwrap_err();
        assert!(e.message.contains("out of range"));

        let e = parse_qasm("OPENQASM 2.0;\nh q[0];", "noreg").unwrap_err();
        assert!(e.message.contains("no qreg"));
    }

    #[test]
    fn unsupported_statements_rejected() {
        let e = parse_qasm("OPENQASM 2.0; qreg q[1]; gate foo a { x a; } foo q[0];", "custom")
            .unwrap_err();
        assert!(e.message.contains("unsupported"));
    }

    #[test]
    fn roundtrip_preserves_gates() {
        let mut c = Circuit::new("rt", 3);
        c.h(0).t(1).rz(0.7, 2).cx(0, 1).cz(1, 2).cp(0.3, 0, 2).swap(0, 2);
        let qasm = to_qasm(&c);
        let back = parse_qasm(&qasm, "rt").unwrap();
        assert_eq!(back.num_qubits(), c.num_qubits());
        assert_eq!(back.num_gates(), c.num_gates());
        assert_eq!(back.interaction_pairs(), c.interaction_pairs());
    }

    #[test]
    fn roundtrip_is_semantically_exact() {
        // The emitted QASM re-parses to the same gate list.
        let mut c = Circuit::new("exact", 2);
        c.one_q(OneQGate::U3 { theta: 0.1, phi: 0.2, lambda: 0.3 }, 0);
        c.one_q(OneQGate::Sdg, 1);
        c.cx(1, 0);
        let back = parse_qasm(&to_qasm(&c), "exact").unwrap();
        assert_eq!(back.gates(), c.gates());
    }

    #[test]
    fn suite_circuits_roundtrip_through_qasm() {
        for entry in crate::bench_circuits::paper_suite().into_iter().take(6) {
            let qasm = to_qasm(&entry.circuit);
            let back = parse_qasm(&qasm, entry.circuit.name()).unwrap();
            assert_eq!(back.num_2q_gates(), entry.circuit.num_2q_gates());
            assert_eq!(back.num_1q_gates(), entry.circuit.num_1q_gates());
        }
    }
}
