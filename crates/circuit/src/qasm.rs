//! OpenQASM 2.0 import/export.
//!
//! QASMBench — the paper's benchmark source — ships OpenQASM 2.0 files, so
//! this module provides the real-world input path: a parser covering the
//! `qelib1.inc` gate vocabulary the suite uses (with Toffoli/Fredkin lowered
//! through the standard decompositions) and an emitter that round-trips any
//! [`Circuit`].
//!
//! Supported statements: `OPENQASM 2.0;`, `include`, `qreg`, `creg`, gate
//! applications on indexed (`q[3]`) or whole-register broadcast (`h q;`)
//! operands, user `gate name(params) args { ... }` definitions (inlined by
//! macro expansion with formal-parameter substitution), `barrier` (ignored),
//! `measure` (ignored — the paper's flow compiles the unitary part).
//! Classical control (`if`), `reset`, and `opaque` are not supported and
//! produce a clear error.
//!
//! Statement heads are split with a depth-aware scan, so nested parentheses
//! in gate parameters (`cu1((1+2)*pi/8) q[0],q[1];`) and whitespace between
//! the gate name and its parameter list (`rz (pi/4) q[0];`) both parse.

use crate::circuit::Circuit;
use crate::gate::OneQGate;
use crate::Gate;
use std::collections::HashMap;
use std::f64::consts::PI;
use std::fmt;

/// Gate-definition bodies may reference earlier user gates; this bounds the
/// expansion so a (malformed) self-referential definition errors instead of
/// recursing forever.
const MAX_EXPANSION_DEPTH: usize = 16;

/// Parse error with 1-based line information.
#[derive(Debug, Clone, PartialEq)]
pub struct QasmError {
    /// 1-based source line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for QasmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "qasm parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for QasmError {}

fn err(line: usize, message: impl Into<String>) -> QasmError {
    QasmError { line, message: message.into() }
}

/// A tiny expression evaluator for gate parameters: numbers, `pi`, bound
/// identifiers (`vars` — formal parameters during gate-definition
/// expansion), the qelib1 unary functions (`sin cos tan exp ln sqrt`),
/// unary minus, `+ - * /`, and parentheses.
fn eval_expr(src: &str, line: usize, vars: &HashMap<String, f64>) -> Result<f64, QasmError> {
    struct P<'a> {
        s: &'a [u8],
        i: usize,
        line: usize,
        vars: &'a HashMap<String, f64>,
    }
    impl P<'_> {
        fn peek(&self) -> Option<u8> {
            self.s.get(self.i).copied()
        }
        fn skip_ws(&mut self) {
            while matches!(self.peek(), Some(b' ') | Some(b'\t')) {
                self.i += 1;
            }
        }
        fn expr(&mut self) -> Result<f64, QasmError> {
            let mut v = self.term()?;
            loop {
                self.skip_ws();
                match self.peek() {
                    Some(b'+') => {
                        self.i += 1;
                        v += self.term()?;
                    }
                    Some(b'-') => {
                        self.i += 1;
                        v -= self.term()?;
                    }
                    _ => return Ok(v),
                }
            }
        }
        fn term(&mut self) -> Result<f64, QasmError> {
            let mut v = self.factor()?;
            loop {
                self.skip_ws();
                match self.peek() {
                    Some(b'*') => {
                        self.i += 1;
                        v *= self.factor()?;
                    }
                    Some(b'/') => {
                        self.i += 1;
                        v /= self.factor()?;
                    }
                    _ => return Ok(v),
                }
            }
        }
        fn paren_arg(&mut self) -> Result<f64, QasmError> {
            self.skip_ws();
            if self.peek() != Some(b'(') {
                return Err(err(self.line, "expected '(' in expression"));
            }
            self.i += 1;
            let v = self.expr()?;
            self.skip_ws();
            if self.peek() == Some(b')') {
                self.i += 1;
                Ok(v)
            } else {
                Err(err(self.line, "missing ')' in expression"))
            }
        }
        fn factor(&mut self) -> Result<f64, QasmError> {
            self.skip_ws();
            match self.peek() {
                Some(b'-') => {
                    self.i += 1;
                    Ok(-self.factor()?)
                }
                Some(b'+') => {
                    self.i += 1;
                    self.factor()
                }
                Some(b'(') => self.paren_arg(),
                Some(c) if c.is_ascii_alphabetic() || c == b'_' => {
                    let start = self.i;
                    while matches!(self.peek(), Some(c) if c.is_ascii_alphanumeric() || c == b'_') {
                        self.i += 1;
                    }
                    let id = std::str::from_utf8(&self.s[start..self.i])
                        .expect("identifier bytes are ASCII");
                    if id.eq_ignore_ascii_case("pi") {
                        return Ok(PI);
                    }
                    if let Some(&v) = self.vars.get(id) {
                        return Ok(v);
                    }
                    let f: fn(f64) -> f64 = match id {
                        "sin" => f64::sin,
                        "cos" => f64::cos,
                        "tan" => f64::tan,
                        "exp" => f64::exp,
                        "ln" => f64::ln,
                        "sqrt" => f64::sqrt,
                        _ => {
                            return Err(err(
                                self.line,
                                format!("unknown identifier '{id}' in expression"),
                            ))
                        }
                    };
                    Ok(f(self.paren_arg()?))
                }
                Some(c) if c.is_ascii_digit() || c == b'.' => {
                    let start = self.i;
                    while matches!(self.peek(), Some(c) if c.is_ascii_digit() || c == b'.' || c == b'e' || c == b'E')
                    {
                        self.i += 1;
                        // Allow exponent signs.
                        if matches!(self.s.get(self.i.wrapping_sub(1)), Some(b'e') | Some(b'E'))
                            && matches!(self.peek(), Some(b'+') | Some(b'-'))
                        {
                            self.i += 1;
                        }
                    }
                    std::str::from_utf8(&self.s[start..self.i])
                        .ok()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| err(self.line, "malformed number"))
                }
                _ => Err(err(self.line, "malformed expression")),
            }
        }
    }
    let mut p = P { s: src.as_bytes(), i: 0, line, vars };
    let v = p.expr()?;
    p.skip_ws();
    if p.i != p.s.len() {
        return Err(err(line, format!("trailing characters in expression '{src}'")));
    }
    Ok(v)
}

/// Strips comments and splits `source` into `(line, statement)` pairs.
///
/// Statements end at `;` outside braces; a `gate … { … }` definition (whose
/// body contains `;`-separated statements) stays one unit, terminated by
/// its closing `}`.
fn split_statements(source: &str) -> Vec<(usize, String)> {
    let mut cleaned = String::new();
    for (ln, raw) in source.lines().enumerate() {
        let line = match raw.find("//") {
            Some(p) => &raw[..p],
            None => raw,
        };
        cleaned.push_str(line);
        // Keep a line marker so statements know their origin.
        cleaned.push_str(&format!("\u{0}{}\u{0}", ln + 1));
    }

    let mut raw_stmts: Vec<String> = Vec::new();
    let mut cur = String::new();
    let mut depth = 0usize;
    for ch in cleaned.chars() {
        match ch {
            '{' => {
                depth += 1;
                cur.push(ch);
            }
            '}' => {
                depth = depth.saturating_sub(1);
                cur.push(ch);
                if depth == 0 {
                    raw_stmts.push(std::mem::take(&mut cur));
                }
            }
            ';' if depth == 0 => raw_stmts.push(std::mem::take(&mut cur)),
            _ => cur.push(ch),
        }
    }
    raw_stmts.push(cur);

    let mut out = Vec::new();
    let mut current_line = 1usize;
    for stmt in raw_stmts {
        let mut text = String::new();
        // Content and markers strictly alternate (every marker is wrapped
        // in a NUL pair and statement boundaries fall inside content), so
        // odd-indexed pieces are always markers — statement content that
        // happens to be a bare number is never mistaken for one.
        for (idx, piece) in stmt.split('\u{0}').enumerate() {
            if idx % 2 == 1 {
                // A marker for line n sits at the end of line n, so content
                // after it belongs to line n+1.
                if text.trim().is_empty() {
                    if let Ok(n) = piece.trim().parse::<usize>() {
                        current_line = n + 1;
                    }
                }
                continue;
            }
            text.push_str(piece);
            text.push(' ');
        }
        let text = text.trim().to_string();
        if !text.is_empty() {
            out.push((current_line, text));
        }
    }
    out
}

/// The leading identifier of a statement (empty if none); classifies the
/// statement kind.
fn keyword(stmt: &str) -> &str {
    let s = stmt.trim_start();
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
        i += 1;
    }
    &s[..i]
}

fn is_identifier(s: &str) -> bool {
    let b = s.as_bytes();
    !b.is_empty()
        && (b[0].is_ascii_alphabetic() || b[0] == b'_')
        && b.iter().all(|c| c.is_ascii_alphanumeric() || *c == b'_')
}

/// Splits a gate-application head into `(name, parameter source, operand
/// source)` with a depth-aware scan: nested parentheses in parameters and
/// whitespace between the name and `(` are both fine.
fn split_head(stmt: &str, line: usize) -> Result<(&str, Option<&str>, &str), QasmError> {
    let s = stmt.trim();
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
        i += 1;
    }
    if i == 0 {
        return Err(err(line, format!("expected a gate name in '{s}'")));
    }
    let name = &s[..i];
    let rest = s[i..].trim_start();
    if let Some(stripped) = rest.strip_prefix('(') {
        let mut depth = 1usize;
        for (j, ch) in stripped.char_indices() {
            match ch {
                '(' => depth += 1,
                ')' => {
                    depth -= 1;
                    if depth == 0 {
                        return Ok((name, Some(&stripped[..j]), &stripped[j + 1..]));
                    }
                }
                _ => {}
            }
        }
        Err(err(line, "missing ')' in gate parameters"))
    } else {
        Ok((name, None, rest))
    }
}

/// Splits on commas at parenthesis depth 0, so parameter expressions with
/// their own commas-in-parens never confuse the list structure.
fn split_top_commas(s: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut start = 0;
    for (i, ch) in s.char_indices() {
        match ch {
            '(' => depth += 1,
            ')' => depth = depth.saturating_sub(1),
            ',' if depth == 0 => {
                out.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    out.push(&s[start..]);
    out
}

fn eval_params(
    params_src: Option<&str>,
    line: usize,
    vars: &HashMap<String, f64>,
) -> Result<Vec<f64>, QasmError> {
    match params_src {
        Some(src) => split_top_commas(src)
            .iter()
            .filter(|e| !e.trim().is_empty())
            .map(|e| eval_expr(e.trim(), line, vars))
            .collect(),
        None => Ok(Vec::new()),
    }
}

/// A user `gate` definition, stored for macro expansion at application time.
#[derive(Debug, Clone)]
struct GateDef {
    /// Formal parameter names.
    params: Vec<String>,
    /// Formal qubit argument names.
    args: Vec<String>,
    /// Body statements (gate applications on the formal names).
    body: Vec<String>,
}

fn parse_gate_def(stmt: &str, line: usize) -> Result<(String, GateDef), QasmError> {
    let open = stmt.find('{').ok_or_else(|| err(line, "gate definition missing '{'"))?;
    let close = stmt.rfind('}').ok_or_else(|| err(line, "gate definition missing '}'"))?;
    if close < open {
        return Err(err(line, "malformed gate definition"));
    }
    let head = stmt[..open]
        .trim()
        .strip_prefix("gate")
        .ok_or_else(|| err(line, "malformed gate definition"))?;
    let (name, params_src, args_src) = split_head(head, line)?;
    let params: Vec<String> = match params_src {
        Some(src) => split_top_commas(src)
            .iter()
            .map(|p| p.trim().to_string())
            .filter(|p| !p.is_empty())
            .collect(),
        None => Vec::new(),
    };
    let args: Vec<String> =
        args_src.split(',').map(|a| a.trim().to_string()).filter(|a| !a.is_empty()).collect();
    if args.is_empty() {
        return Err(err(line, format!("gate '{name}' declares no qubit arguments")));
    }
    for ident in params.iter().chain(&args) {
        if !is_identifier(ident) {
            return Err(err(line, format!("malformed name '{ident}' in gate definition")));
        }
    }
    let body = stmt[open + 1..close]
        .split(';')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(String::from)
        .collect();
    Ok((name.to_string(), GateDef { params, args, body }))
}

/// A resolved gate operand: a single qubit (`q[3]`), or a whole register
/// (`q`) / register slice (`q[2:5]`, inclusive ends as in OpenQASM 3),
/// either of which broadcasts across its qubits.
#[derive(Debug, Clone, Copy)]
enum Operand {
    Single(usize),
    Reg { offset: usize, size: usize },
}

fn resolve_operand(
    text: &str,
    line: usize,
    regs: &HashMap<String, (usize, usize)>,
) -> Result<Operand, QasmError> {
    let t = text.trim();
    if let Some(open) = t.find('[') {
        let close = t.find(']').ok_or_else(|| err(line, "missing ']' in operand"))?;
        let rname = t[..open].trim();
        let &(offset, size) =
            regs.get(rname).ok_or_else(|| err(line, format!("unknown register '{rname}'")))?;
        let index_text = t[open + 1..close].trim();
        if let Some((lo_text, hi_text)) = index_text.split_once(':') {
            // Register slice `q[lo:hi]`: both ends inclusive, broadcast like
            // a whole register of width `hi - lo + 1`.
            let parse = |s: &str| -> Result<usize, QasmError> {
                s.trim().parse().map_err(|_| err(line, format!("malformed slice bound '{s}'")))
            };
            let (lo, hi) = (parse(lo_text)?, parse(hi_text)?);
            if lo > hi {
                return Err(err(line, format!("reversed slice {rname}[{lo}:{hi}]")));
            }
            if hi >= size {
                return Err(err(
                    line,
                    format!("slice {rname}[{lo}:{hi}] out of range for {rname}[{size}]"),
                ));
            }
            return Ok(Operand::Reg { offset: offset + lo, size: hi - lo + 1 });
        }
        let idx: usize = index_text.parse().map_err(|_| err(line, "malformed qubit index"))?;
        if idx >= size {
            return Err(err(line, format!("index {idx} out of range for {rname}[{size}]")));
        }
        Ok(Operand::Single(offset + idx))
    } else {
        let &(offset, size) =
            regs.get(t).ok_or_else(|| err(line, format!("unknown register '{t}'")))?;
        Ok(Operand::Reg { offset, size })
    }
}

/// Expands register broadcast per the OpenQASM 2.0 spec: every whole-
/// register operand must have the same size `n`, and the statement applies
/// `n` times with indexed operands held fixed.
fn expand_broadcast(operands: &[Operand], line: usize) -> Result<Vec<Vec<usize>>, QasmError> {
    let mut width: Option<usize> = None;
    for op in operands {
        if let Operand::Reg { size, .. } = *op {
            match width {
                None => width = Some(size),
                Some(w) if w == size => {}
                Some(w) => {
                    return Err(err(
                        line,
                        format!("mismatched register sizes in broadcast: {w} vs {size}"),
                    ))
                }
            }
        }
    }
    let n = width.unwrap_or(1);
    Ok((0..n)
        .map(|k| {
            operands
                .iter()
                .map(|op| match *op {
                    Operand::Single(q) => q,
                    Operand::Reg { offset, .. } => offset + k,
                })
                .collect()
        })
        .collect())
}

/// Parses an OpenQASM 2.0 program into a [`Circuit`].
///
/// # Errors
///
/// [`QasmError`] with the offending line on unsupported or malformed input.
///
/// # Example
///
/// ```
/// let qasm = r#"
///     OPENQASM 2.0;
///     include "qelib1.inc";
///     qreg q[2];
///     h q;              // whole-register broadcast
///     cx q[0], q[1];
/// "#;
/// let c = zac_circuit::qasm::parse_qasm(qasm, "bell")?;
/// assert_eq!(c.num_qubits(), 2);
/// assert_eq!(c.num_1q_gates(), 2);
/// assert_eq!(c.num_2q_gates(), 1);
/// # Ok::<(), zac_circuit::qasm::QasmError>(())
/// ```
pub fn parse_qasm(source: &str, name: &str) -> Result<Circuit, QasmError> {
    let ops = split_statements(source);
    zac_telemetry::metrics::QASM_STATEMENTS.add(ops.len() as u64);

    // First pass: register declarations and user gate definitions (both may
    // legally appear after their textual position would suggest — QASMBench
    // files declare gates before registers and vice versa).
    let mut regs: HashMap<String, (usize, usize)> = HashMap::new();
    let mut defs: HashMap<String, GateDef> = HashMap::new();
    let mut total_qubits = 0usize;
    for (line, stmt) in &ops {
        match keyword(stmt).to_ascii_lowercase().as_str() {
            "qreg" => {
                let rest = stmt.trim_start()["qreg".len()..].trim();
                let (rname, size) = parse_reg_decl(rest, *line)?;
                if regs.insert(rname.clone(), (total_qubits, size)).is_some() {
                    return Err(err(*line, format!("duplicate qreg '{rname}'")));
                }
                total_qubits += size;
            }
            "gate" => {
                let (gname, def) = parse_gate_def(stmt, *line)?;
                if defs.insert(gname.clone(), def).is_some() {
                    return Err(err(*line, format!("duplicate gate definition '{gname}'")));
                }
            }
            _ => {}
        }
    }
    if total_qubits == 0 {
        return Err(err(1, "no qreg declaration found"));
    }

    let mut circuit = Circuit::new(name, total_qubits);
    let no_vars = HashMap::new();
    for (line, stmt) in &ops {
        let line = *line;
        match keyword(stmt).to_ascii_lowercase().as_str() {
            "openqasm" | "include" | "qreg" | "creg" | "barrier" | "measure" | "gate" => continue,
            "if" | "reset" | "opaque" => {
                return Err(err(line, format!("unsupported statement: '{stmt}'")))
            }
            _ => {}
        }

        let (gate_name, params_src, operands_src) = split_head(stmt, line)?;
        let params = eval_params(params_src, line, &no_vars)?;
        let operands: Vec<Operand> = operands_src
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(|o| resolve_operand(o, line, &regs))
            .collect::<Result<_, _>>()?;
        if operands.is_empty() {
            return Err(err(line, format!("gate '{gate_name}' applied to no operands")));
        }
        for qubits in expand_broadcast(&operands, line)? {
            apply_named(&mut circuit, gate_name, &params, &qubits, &defs, line, 0)?;
        }
    }
    Ok(circuit)
}

fn parse_reg_decl(rest: &str, line: usize) -> Result<(String, usize), QasmError> {
    let open = rest.find('[').ok_or_else(|| err(line, "malformed qreg"))?;
    let close = rest.find(']').ok_or_else(|| err(line, "malformed qreg"))?;
    let name = rest[..open].trim().to_string();
    let size: usize =
        rest[open + 1..close].trim().parse().map_err(|_| err(line, "malformed qreg size"))?;
    if name.is_empty() || size == 0 {
        return Err(err(line, "malformed qreg declaration"));
    }
    Ok((name, size))
}

fn one(qubits: &[usize], line: usize) -> Result<usize, QasmError> {
    if qubits.len() == 1 {
        Ok(qubits[0])
    } else {
        Err(err(line, format!("expected 1 operand, got {}", qubits.len())))
    }
}

fn two(qubits: &[usize], line: usize) -> Result<(usize, usize), QasmError> {
    match *qubits {
        [a, b] if a != b => Ok((a, b)),
        [a, _] => Err(err(line, format!("duplicate qubit operand {a}"))),
        _ => Err(err(line, format!("expected 2 operands, got {}", qubits.len()))),
    }
}

fn three(qubits: &[usize], line: usize) -> Result<(usize, usize, usize), QasmError> {
    match *qubits {
        [a, b, c] if a != b && a != c && b != c => Ok((a, b, c)),
        [_, _, _] => Err(err(line, "duplicate qubit operand in 3-qubit gate".to_string())),
        _ => Err(err(line, format!("expected 3 operands, got {}", qubits.len()))),
    }
}

fn param(params: &[f64], k: usize, line: usize, gate: &str) -> Result<f64, QasmError> {
    params.get(k).copied().ok_or_else(|| err(line, format!("{gate} needs {} parameter(s)", k + 1)))
}

/// Applies a gate by name: the built-in vocabulary directly, user-defined
/// gates by macro expansion with formal-parameter substitution.
fn apply_named(
    c: &mut Circuit,
    name: &str,
    params: &[f64],
    qubits: &[usize],
    defs: &HashMap<String, GateDef>,
    line: usize,
    depth: usize,
) -> Result<(), QasmError> {
    if depth > MAX_EXPANSION_DEPTH {
        return Err(err(
            line,
            format!(
                "gate expansion deeper than {MAX_EXPANSION_DEPTH} levels (recursive definition?)"
            ),
        ));
    }
    // Built-ins win over user definitions: files that inline qelib1 itself
    // (`gate h a { u2(0,pi) a; }`) get our native lowering.
    if apply_builtin(c, name, params, qubits, line)? {
        return Ok(());
    }
    let def = defs.get(name).ok_or_else(|| err(line, format!("unsupported gate '{name}'")))?;
    if params.len() != def.params.len() {
        return Err(err(
            line,
            format!("gate '{name}' takes {} parameter(s), got {}", def.params.len(), params.len()),
        ));
    }
    if qubits.len() != def.args.len() {
        return Err(err(
            line,
            format!("gate '{name}' takes {} operand(s), got {}", def.args.len(), qubits.len()),
        ));
    }
    let vars: HashMap<String, f64> =
        def.params.iter().cloned().zip(params.iter().copied()).collect();
    let argmap: HashMap<&str, usize> =
        def.args.iter().map(String::as_str).zip(qubits.iter().copied()).collect();
    for bstmt in &def.body {
        let (bname, bparams_src, boperands_src) = split_head(bstmt, line)?;
        if bname.eq_ignore_ascii_case("barrier") {
            continue;
        }
        let bparams = eval_params(bparams_src, line, &vars)?;
        let bqubits: Vec<usize> = boperands_src
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(|a| {
                argmap.get(a).copied().ok_or_else(|| {
                    err(
                        line,
                        format!("'{a}' in the body of gate '{name}' is not a declared argument"),
                    )
                })
            })
            .collect::<Result<_, _>>()?;
        apply_named(c, bname, &bparams, &bqubits, defs, line, depth + 1)?;
    }
    Ok(())
}

/// Applies a built-in gate; `Ok(false)` means the name is not built-in.
fn apply_builtin(
    c: &mut Circuit,
    gate: &str,
    params: &[f64],
    qubits: &[usize],
    line: usize,
) -> Result<bool, QasmError> {
    match gate.to_ascii_lowercase().as_str() {
        "h" => {
            c.h(one(qubits, line)?);
        }
        "x" => {
            c.x(one(qubits, line)?);
        }
        "y" => {
            c.one_q(OneQGate::Y, one(qubits, line)?);
        }
        "z" => {
            c.z(one(qubits, line)?);
        }
        "s" => {
            c.one_q(OneQGate::S, one(qubits, line)?);
        }
        "sdg" => {
            c.one_q(OneQGate::Sdg, one(qubits, line)?);
        }
        "t" => {
            c.t(one(qubits, line)?);
        }
        "tdg" => {
            c.tdg(one(qubits, line)?);
        }
        "sx" => {
            c.sx_decomposed(one(qubits, line)?);
        }
        "sxdg" => {
            c.sxdg_decomposed(one(qubits, line)?);
        }
        // Identity / idle: `u0(γ)` takes a duration parameter, ignored here.
        "id" | "u0" => {
            one(qubits, line)?;
        }
        "rx" => {
            c.rx(param(params, 0, line, "rx")?, one(qubits, line)?);
        }
        "ry" => {
            c.ry(param(params, 0, line, "ry")?, one(qubits, line)?);
        }
        "rz" => {
            c.rz(param(params, 0, line, "rz")?, one(qubits, line)?);
        }
        "p" | "u1" => {
            c.one_q(OneQGate::Phase(param(params, 0, line, "u1")?), one(qubits, line)?);
        }
        "u2" => {
            let phi = param(params, 0, line, "u2")?;
            let lambda = param(params, 1, line, "u2")?;
            c.one_q(OneQGate::U3 { theta: PI / 2.0, phi, lambda }, one(qubits, line)?);
        }
        "u3" | "u" => {
            let theta = param(params, 0, line, "u3")?;
            let phi = param(params, 1, line, "u3")?;
            let lambda = param(params, 2, line, "u3")?;
            c.one_q(OneQGate::U3 { theta, phi, lambda }, one(qubits, line)?);
        }
        "cx" | "cnot" => {
            let (a, b) = two(qubits, line)?;
            c.cx(a, b);
        }
        "cz" => {
            let (a, b) = two(qubits, line)?;
            c.cz(a, b);
        }
        "cp" | "cu1" => {
            let (a, b) = two(qubits, line)?;
            c.cp(param(params, 0, line, "cp")?, a, b);
        }
        "cy" => {
            let (a, b) = two(qubits, line)?;
            c.cy_decomposed(a, b);
        }
        "ch" => {
            let (a, b) = two(qubits, line)?;
            c.ch_decomposed(a, b);
        }
        "crz" => {
            let lambda = param(params, 0, line, "crz")?;
            let (a, b) = two(qubits, line)?;
            c.crz_decomposed(lambda, a, b);
        }
        "cu3" => {
            let theta = param(params, 0, line, "cu3")?;
            let phi = param(params, 1, line, "cu3")?;
            let lambda = param(params, 2, line, "cu3")?;
            let (a, b) = two(qubits, line)?;
            c.cu3_decomposed(theta, phi, lambda, a, b);
        }
        "rzz" => {
            let theta = param(params, 0, line, "rzz")?;
            let (a, b) = two(qubits, line)?;
            c.rzz_decomposed(theta, a, b);
        }
        "swap" => {
            let (a, b) = two(qubits, line)?;
            c.swap(a, b);
        }
        "ccx" | "toffoli" => {
            let (a, b, t) = three(qubits, line)?;
            c.ccx_decomposed(a, b, t);
        }
        "cswap" | "fredkin" => {
            let (a, b, t) = three(qubits, line)?;
            c.cswap_decomposed(a, b, t);
        }
        _ => return Ok(false),
    }
    Ok(true)
}

/// Emits a [`Circuit`] as OpenQASM 2.0.
///
/// # Example
///
/// ```
/// use zac_circuit::Circuit;
/// let mut c = Circuit::new("bell", 2);
/// c.h(0).cx(0, 1);
/// let qasm = zac_circuit::qasm::to_qasm(&c);
/// assert!(qasm.contains("cx q[0], q[1];"));
/// ```
pub fn to_qasm(circuit: &Circuit) -> String {
    let mut out = String::new();
    out.push_str("OPENQASM 2.0;\ninclude \"qelib1.inc\";\n");
    out.push_str(&format!("qreg q[{}];\n", circuit.num_qubits()));
    for g in circuit.gates() {
        match *g {
            Gate::OneQ { gate, qubit } => {
                let stmt = match gate {
                    OneQGate::H => "h".to_string(),
                    OneQGate::X => "x".to_string(),
                    OneQGate::Y => "y".to_string(),
                    OneQGate::Z => "z".to_string(),
                    OneQGate::S => "s".to_string(),
                    OneQGate::Sdg => "sdg".to_string(),
                    OneQGate::T => "t".to_string(),
                    OneQGate::Tdg => "tdg".to_string(),
                    OneQGate::Rx(t) => format!("rx({t})"),
                    OneQGate::Ry(t) => format!("ry({t})"),
                    OneQGate::Rz(t) => format!("rz({t})"),
                    OneQGate::Phase(t) => format!("u1({t})"),
                    OneQGate::U3 { theta, phi, lambda } => {
                        format!("u3({theta},{phi},{lambda})")
                    }
                };
                out.push_str(&format!("{stmt} q[{qubit}];\n"));
            }
            Gate::TwoQ { kind, a, b } => {
                let stmt = match kind {
                    crate::TwoQKind::Cx => format!("cx q[{a}], q[{b}];"),
                    crate::TwoQKind::Cz => format!("cz q[{a}], q[{b}];"),
                    crate::TwoQKind::Cp(t) => format!("cu1({t}) q[{a}], q[{b}];"),
                    crate::TwoQKind::Swap => format!("swap q[{a}], q[{b}];"),
                };
                out.push_str(&stmt);
                out.push('\n');
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_vars() -> HashMap<String, f64> {
        HashMap::new()
    }

    #[test]
    fn parse_bell() {
        let c = parse_qasm(
            "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\nh q[0];\ncx q[0],q[1];\n",
            "bell",
        )
        .unwrap();
        assert_eq!(c.num_qubits(), 2);
        assert_eq!(c.num_1q_gates(), 1);
        assert_eq!(c.num_2q_gates(), 1);
    }

    #[test]
    fn parse_multiple_registers() {
        let c = parse_qasm("OPENQASM 2.0; qreg a[2]; qreg b[3]; cx a[1], b[0]; x b[2];", "regs")
            .unwrap();
        assert_eq!(c.num_qubits(), 5);
        // a[1] = global 1, b[0] = global 2, b[2] = global 4.
        assert_eq!(c.interaction_pairs(), vec![(1, 2)]);
    }

    #[test]
    fn parse_parameterized_gates() {
        let c = parse_qasm(
            "OPENQASM 2.0; qreg q[2]; rz(pi/4) q[0]; u3(1.5, -0.25, 2e-1) q[1]; cu1(pi/2) q[0], q[1];",
            "params",
        )
        .unwrap();
        assert_eq!(c.num_1q_gates(), 2);
        assert_eq!(c.num_2q_gates(), 1);
        match c.gates()[0] {
            Gate::OneQ { gate: OneQGate::Rz(t), .. } => {
                assert!((t - PI / 4.0).abs() < 1e-12)
            }
            ref g => panic!("unexpected {g:?}"),
        }
    }

    #[test]
    fn parse_expression_arithmetic() {
        assert!((eval_expr("pi/2", 1, &no_vars()).unwrap() - PI / 2.0).abs() < 1e-12);
        assert!((eval_expr("-pi*3/4", 1, &no_vars()).unwrap() + 3.0 * PI / 4.0).abs() < 1e-12);
        assert!((eval_expr("(1+2)*3", 1, &no_vars()).unwrap() - 9.0).abs() < 1e-12);
        assert!((eval_expr("2e-1", 1, &no_vars()).unwrap() - 0.2).abs() < 1e-12);
        assert!(eval_expr("pi+", 1, &no_vars()).is_err());
        assert!(eval_expr("(1", 1, &no_vars()).is_err());
    }

    #[test]
    fn expression_functions_and_bindings() {
        assert!((eval_expr("cos(0)", 1, &no_vars()).unwrap() - 1.0).abs() < 1e-12);
        assert!((eval_expr("sin(pi/2)", 1, &no_vars()).unwrap() - 1.0).abs() < 1e-12);
        assert!((eval_expr("sqrt(4)", 1, &no_vars()).unwrap() - 2.0).abs() < 1e-12);
        assert!((eval_expr("ln(exp(1))", 1, &no_vars()).unwrap() - 1.0).abs() < 1e-12);
        assert!((eval_expr("tan(0)", 1, &no_vars()).unwrap()).abs() < 1e-12);
        let vars: HashMap<String, f64> = [("theta".to_string(), 0.5)].into_iter().collect();
        assert!((eval_expr("theta*2", 1, &vars).unwrap() - 1.0).abs() < 1e-12);
        assert!((eval_expr("-theta/2 + pi", 1, &vars).unwrap() - (PI - 0.25)).abs() < 1e-12);
        assert!(eval_expr("theta", 1, &no_vars()).is_err());
        assert!(eval_expr("sin 1", 1, &no_vars()).is_err());
    }

    /// Regression (issue): the old head splitter used `find(')')` and broke
    /// on nested parentheses in parameters.
    #[test]
    fn nested_paren_parameters() {
        let c =
            parse_qasm("OPENQASM 2.0; qreg q[2]; cu1((1+2)*pi/8) q[0],q[1];", "nested").unwrap();
        assert_eq!(c.num_2q_gates(), 1);
        match c.gates()[0] {
            Gate::TwoQ { kind: crate::TwoQKind::Cp(t), .. } => {
                assert!((t - 3.0 * PI / 8.0).abs() < 1e-12)
            }
            ref g => panic!("unexpected {g:?}"),
        }

        let c =
            parse_qasm("OPENQASM 2.0; qreg q[1]; u3( pi/2, 0, (pi) ) q[0];", "nested3").unwrap();
        match c.gates()[0] {
            Gate::OneQ { gate: OneQGate::U3 { theta, phi, lambda }, .. } => {
                assert!((theta - PI / 2.0).abs() < 1e-12);
                assert_eq!(phi, 0.0);
                assert!((lambda - PI).abs() < 1e-12);
            }
            ref g => panic!("unexpected {g:?}"),
        }
    }

    /// Regression (issue): whitespace between the gate name and `(`, and
    /// around operand commas, must parse.
    #[test]
    fn whitespace_tolerant_statements() {
        let c = parse_qasm(
            "OPENQASM 2.0; qreg q[2]; rz (pi/4) q[0]; cx q[0] , q[1]; cu1 ( pi/2 ) q[0] ,q[1];",
            "ws",
        )
        .unwrap();
        assert_eq!(c.num_1q_gates(), 1);
        assert_eq!(c.num_2q_gates(), 2);
        match c.gates()[0] {
            Gate::OneQ { gate: OneQGate::Rz(t), .. } => assert!((t - PI / 4.0).abs() < 1e-12),
            ref g => panic!("unexpected {g:?}"),
        }
    }

    #[test]
    fn broadcast_single_qubit_gate() {
        let c = parse_qasm("OPENQASM 2.0; qreg q[4]; h q;", "bcast1").unwrap();
        assert_eq!(c.num_1q_gates(), 4);
        for (k, g) in c.gates().iter().enumerate() {
            assert_eq!(*g, Gate::OneQ { gate: OneQGate::H, qubit: k });
        }
    }

    #[test]
    fn broadcast_two_qubit_gates() {
        // reg ⊗ reg: pairwise.
        let c = parse_qasm("OPENQASM 2.0; qreg a[2]; qreg b[2]; cx a, b;", "bcast2").unwrap();
        assert_eq!(c.interaction_pairs(), vec![(0, 2), (1, 3)]);
        // single ⊗ reg: the indexed operand is held fixed.
        let c = parse_qasm("OPENQASM 2.0; qreg a[2]; qreg b[2]; cx a[0], b;", "bcast3").unwrap();
        assert_eq!(c.interaction_pairs(), vec![(0, 2), (0, 3)]);
    }

    #[test]
    fn broadcast_size_mismatch_rejected() {
        let e = parse_qasm("OPENQASM 2.0; qreg a[2]; qreg b[3]; cx a, b;", "bad").unwrap_err();
        assert!(e.message.contains("mismatched register sizes"), "{e}");
    }

    #[test]
    fn register_slices_broadcast() {
        // Slice ⊗ slice: pairwise over the inclusive ranges.
        let c = parse_qasm("OPENQASM 2.0; qreg q[6]; cx q[0:2], q[3:5];", "slice2").unwrap();
        assert_eq!(c.interaction_pairs(), vec![(0, 3), (1, 4), (2, 5)]);
        // Slice ⊗ single: the indexed operand is held fixed.
        let c = parse_qasm("OPENQASM 2.0; qreg q[5]; cx q[1:3], q[4];", "slicefix").unwrap();
        assert_eq!(c.interaction_pairs(), vec![(1, 4), (2, 4), (3, 4)]);
        // One-qubit gates broadcast over a slice too.
        let c = parse_qasm("OPENQASM 2.0; qreg q[5]; h q[2:4];", "slice1").unwrap();
        assert_eq!(c.num_1q_gates(), 3);
        for (k, g) in c.gates().iter().enumerate() {
            assert_eq!(*g, Gate::OneQ { gate: OneQGate::H, qubit: k + 2 });
        }
        // A width-1 slice behaves like the indexed qubit.
        let c = parse_qasm("OPENQASM 2.0; qreg q[3]; cx q[1:1], q[2];", "slicew1").unwrap();
        assert_eq!(c.interaction_pairs(), vec![(1, 2)]);
        // Slices of different widths are a broadcast mismatch.
        let e = parse_qasm("OPENQASM 2.0; qreg q[6]; cx q[0:1], q[2:5];", "slicemis").unwrap_err();
        assert!(e.message.contains("mismatched register sizes"), "{e}");
    }

    #[test]
    fn malformed_register_slices_rejected() {
        let e = parse_qasm("OPENQASM 2.0;\nqreg q[6];\ncx q[3:1], q[4:5];", "rev").unwrap_err();
        assert!(e.message.contains("reversed slice"), "{e}");
        assert_eq!(e.line, 3, "error carries the offending line");
        let e = parse_qasm("OPENQASM 2.0; qreg q[4]; h q[2:7];", "oob").unwrap_err();
        assert!(e.message.contains("out of range"), "{e}");
        let e = parse_qasm("OPENQASM 2.0; qreg q[4]; h q[1:x];", "badhi").unwrap_err();
        assert!(e.message.contains("malformed slice bound"), "{e}");
        let e = parse_qasm("OPENQASM 2.0; qreg q[4]; h q[:2];", "nolo").unwrap_err();
        assert!(e.message.contains("malformed slice bound"), "{e}");
    }

    #[test]
    fn duplicate_qubit_operands_rejected_not_panicking() {
        let e = parse_qasm("OPENQASM 2.0; qreg q[2]; cx q[0], q[0];", "dup").unwrap_err();
        assert!(e.message.contains("duplicate"), "{e}");
        let e = parse_qasm("OPENQASM 2.0; qreg q[3]; ccx q[0],q[1],q[0];", "dup3").unwrap_err();
        assert!(e.message.contains("duplicate"), "{e}");
    }

    #[test]
    fn qelib1_extended_vocabulary() {
        let c = parse_qasm(
            "OPENQASM 2.0; qreg q[2]; cy q[0],q[1]; ch q[0],q[1]; crz(pi/3) q[0],q[1]; \
             cu3(0.5,0.1,-0.2) q[0],q[1]; rzz(0.3) q[0],q[1]; u0(1) q[0]; id q[1];",
            "qelib1",
        )
        .unwrap();
        // cy: 1 CX, ch: 2, crz: 2, cu3: 2, rzz: 2; u0/id contribute nothing.
        assert_eq!(c.num_2q_gates(), 9);
        assert!(c.num_1q_gates() > 0);
    }

    #[test]
    fn sx_and_sxdg_lower_to_their_qelib1_decompositions() {
        let c = parse_qasm("OPENQASM 2.0; qreg q[2]; sx q[0]; sxdg q[1];", "sx").unwrap();
        use crate::OneQGate::{Sdg, H, S};
        let expected = [(Sdg, 0), (H, 0), (Sdg, 0), (S, 1), (H, 1), (S, 1)];
        assert_eq!(c.num_gates(), expected.len());
        for (g, (gate, qubit)) in c.gates().iter().zip(expected) {
            assert_eq!(*g, Gate::OneQ { gate, qubit });
        }
    }

    #[test]
    fn gate_definitions_inline() {
        let c = parse_qasm(
            "OPENQASM 2.0; qreg q[3]; \
             gate majority a,b,c { cx c,b; cx c,a; ccx a,b,c; } \
             majority q[0],q[1],q[2];",
            "maj",
        )
        .unwrap();
        // cx + cx + the 6-CX Toffoli lowering.
        assert_eq!(c.num_2q_gates(), 8);
        // First expanded gate: cx q[2],q[1].
        assert_eq!(c.gates()[0], Gate::TwoQ { kind: crate::TwoQKind::Cx, a: 2, b: 1 });
    }

    #[test]
    fn gate_definition_parameter_substitution() {
        let c = parse_qasm(
            "OPENQASM 2.0; qreg q[2]; \
             gate rzx(theta) a,b { h b; cx a,b; rz(theta*2) b; cx a,b; h b; } \
             rzx(pi/4) q[0],q[1];",
            "rzx",
        )
        .unwrap();
        assert_eq!(c.num_2q_gates(), 2);
        let rz = c
            .gates()
            .iter()
            .find_map(|g| match *g {
                Gate::OneQ { gate: OneQGate::Rz(t), qubit } => Some((t, qubit)),
                _ => None,
            })
            .expect("expanded rz");
        assert!((rz.0 - PI / 2.0).abs() < 1e-12);
        assert_eq!(rz.1, 1);
    }

    #[test]
    fn gate_definitions_can_reference_earlier_definitions() {
        let c = parse_qasm(
            "OPENQASM 2.0; qreg q[2]; \
             gate inner a { h a; } \
             gate outer a,b { inner a; cx a,b; inner b; } \
             outer q[0],q[1];",
            "nesting",
        )
        .unwrap();
        assert_eq!(c.num_1q_gates(), 2);
        assert_eq!(c.num_2q_gates(), 1);
    }

    #[test]
    fn gate_definition_broadcast_application() {
        let c = parse_qasm("OPENQASM 2.0; qreg q[3]; gate flip a { x a; } flip q;", "bcast-def")
            .unwrap();
        assert_eq!(c.num_1q_gates(), 3);
    }

    #[test]
    fn recursive_gate_definition_rejected() {
        let e =
            parse_qasm("OPENQASM 2.0; qreg q[1]; gate loop a { loop a; } loop q[0];", "recurse")
                .unwrap_err();
        assert!(e.message.contains("expansion deeper"), "{e}");
    }

    #[test]
    fn gate_definition_unknown_operand_rejected() {
        let e = parse_qasm("OPENQASM 2.0; qreg q[1]; gate bad a { x b; } bad q[0];", "badarg")
            .unwrap_err();
        assert!(e.message.contains("not a declared argument"), "{e}");
    }

    /// Regression (review): a statement split across lines with a bare
    /// number alone on a line must not confuse that number with the
    /// internal line markers.
    #[test]
    fn multiline_statement_with_bare_number_content() {
        let c = parse_qasm("OPENQASM 2.0;\nqreg q[1];\nrz(pi/\n4\n) q[0];", "multiline").unwrap();
        assert_eq!(c.num_1q_gates(), 1);
        match c.gates()[0] {
            Gate::OneQ { gate: OneQGate::Rz(t), .. } => assert!((t - PI / 4.0).abs() < 1e-12),
            ref g => panic!("unexpected {g:?}"),
        }
    }

    /// Regression (review): redeclaring a register or a gate must error
    /// instead of silently overwriting (which left phantom qubit width).
    #[test]
    fn duplicate_declarations_rejected() {
        let e = parse_qasm("OPENQASM 2.0;\nqreg q[2];\nqreg q[3];\nh q;", "dupreg").unwrap_err();
        assert!(e.message.contains("duplicate qreg"), "{e}");
        assert_eq!(e.line, 3);
        let e = parse_qasm(
            "OPENQASM 2.0; qreg q[1]; gate g a { x a; } gate g a { h a; } g q[0];",
            "dupdef",
        )
        .unwrap_err();
        assert!(e.message.contains("duplicate gate definition"), "{e}");
    }

    /// Regression (review): statements that start with a non-identifier
    /// character are malformed input and must error, not vanish silently.
    #[test]
    fn garbage_statements_rejected_not_dropped() {
        let e = parse_qasm("OPENQASM 2.0; qreg q[1]; { x q[0]; }", "stray").unwrap_err();
        assert!(e.message.contains("expected a gate name"), "{e}");
        let e = parse_qasm("OPENQASM 2.0; qreg q[1]; 2;", "number").unwrap_err();
        assert!(!e.message.is_empty());
    }

    #[test]
    fn comments_and_barriers_ignored() {
        let c = parse_qasm(
            "OPENQASM 2.0; // header\nqreg q[2];\nh q[0]; // do H\nbarrier q[0];\ncreg c[2];\nmeasure q[0] -> c[0];\n",
            "comments",
        )
        .unwrap();
        assert_eq!(c.num_gates(), 1);
    }

    #[test]
    fn ccx_lowered_on_parse() {
        let c = parse_qasm("OPENQASM 2.0; qreg q[3]; ccx q[0],q[1],q[2];", "ccx").unwrap();
        assert_eq!(c.num_2q_gates(), 6);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_qasm("OPENQASM 2.0;\nqreg q[2];\nbogus q[0];", "bad").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("bogus"));

        let e = parse_qasm("OPENQASM 2.0;\nqreg q[1];\nh q[4];", "oob").unwrap_err();
        assert!(e.message.contains("out of range"));

        let e = parse_qasm("OPENQASM 2.0;\nh q[0];", "noreg").unwrap_err();
        assert!(e.message.contains("no qreg"));
    }

    #[test]
    fn classical_control_rejected() {
        let e =
            parse_qasm("OPENQASM 2.0; qreg q[1]; creg c[1]; if(c==1) x q[0];", "if").unwrap_err();
        assert!(e.message.contains("unsupported"));
        let e = parse_qasm("OPENQASM 2.0; qreg q[1]; reset q[0];", "reset").unwrap_err();
        assert!(e.message.contains("unsupported"));
        let e = parse_qasm("OPENQASM 2.0; qreg q[1]; opaque magic a;", "opaque").unwrap_err();
        assert!(e.message.contains("unsupported"));
    }

    #[test]
    fn roundtrip_preserves_gates() {
        let mut c = Circuit::new("rt", 3);
        c.h(0).t(1).rz(0.7, 2).cx(0, 1).cz(1, 2).cp(0.3, 0, 2).swap(0, 2);
        let qasm = to_qasm(&c);
        let back = parse_qasm(&qasm, "rt").unwrap();
        assert_eq!(back.num_qubits(), c.num_qubits());
        assert_eq!(back.num_gates(), c.num_gates());
        assert_eq!(back.interaction_pairs(), c.interaction_pairs());
    }

    #[test]
    fn roundtrip_is_semantically_exact() {
        // The emitted QASM re-parses to the same gate list.
        let mut c = Circuit::new("exact", 2);
        c.one_q(OneQGate::U3 { theta: 0.1, phi: 0.2, lambda: 0.3 }, 0);
        c.one_q(OneQGate::Sdg, 1);
        c.cx(1, 0);
        let back = parse_qasm(&to_qasm(&c), "exact").unwrap();
        assert_eq!(back.gates(), c.gates());
    }

    #[test]
    fn suite_circuits_roundtrip_through_qasm() {
        // All 17 paper-suite circuits, not a prefix.
        let entries = crate::bench_circuits::paper_suite();
        assert_eq!(entries.len(), 17);
        for entry in entries {
            let name = entry.circuit.name().to_owned();
            let qasm = to_qasm(&entry.circuit);
            let back = parse_qasm(&qasm, &name).unwrap();
            assert_eq!(back.num_2q_gates(), entry.circuit.num_2q_gates(), "{name}");
            assert_eq!(back.num_1q_gates(), entry.circuit.num_1q_gates(), "{name}");
            assert_eq!(back.gates(), entry.circuit.gates(), "{name}");
        }
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        /// Random circuits over the full emittable gate set.
        fn arb_circuit() -> impl Strategy<Value = Circuit> {
            (2usize..8).prop_flat_map(|n| {
                let g = (0usize..17, 0..n, 0..n, -6.3..6.3f64, -6.3..6.3f64, -6.3..6.3f64);
                proptest::collection::vec(g, 0..30).prop_map(move |ops| {
                    let mut c = Circuit::new("prop_rt", n);
                    for (k, a, b, t, p, l) in ops {
                        match k {
                            0 => {
                                c.h(a);
                            }
                            1 => {
                                c.x(a);
                            }
                            2 => {
                                c.one_q(OneQGate::Y, a);
                            }
                            3 => {
                                c.z(a);
                            }
                            4 => {
                                c.one_q(OneQGate::S, a);
                            }
                            5 => {
                                c.one_q(OneQGate::Sdg, a);
                            }
                            6 => {
                                c.t(a);
                            }
                            7 => {
                                c.tdg(a);
                            }
                            8 => {
                                c.rx(t, a);
                            }
                            9 => {
                                c.ry(t, a);
                            }
                            10 => {
                                c.rz(t, a);
                            }
                            11 => {
                                c.one_q(OneQGate::Phase(t), a);
                            }
                            12 => {
                                c.one_q(OneQGate::U3 { theta: t, phi: p, lambda: l }, a);
                            }
                            13 if a != b => {
                                c.cx(a, b);
                            }
                            14 if a != b => {
                                c.cz(a, b);
                            }
                            15 if a != b => {
                                c.cp(t, a, b);
                            }
                            16 if a != b => {
                                c.swap(a, b);
                            }
                            _ => {}
                        }
                    }
                    c
                })
            })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]

            /// Any emittable circuit round-trips `to_qasm` → `parse_qasm`
            /// exactly (Rust float formatting is shortest-roundtrip, and the
            /// evaluator parses literals with `str::parse::<f64>`).
            #[test]
            fn random_circuits_roundtrip_exactly(c in arb_circuit()) {
                let back = parse_qasm(&to_qasm(&c), "prop_rt").unwrap();
                prop_assert_eq!(back.num_qubits(), c.num_qubits());
                prop_assert_eq!(back.gates(), c.gates());
            }
        }
    }
}
