//! Minimal complex arithmetic for gate unitaries.
//!
//! The preprocessing stage merges adjacent single-qubit gates by multiplying
//! their 2×2 unitaries and re-decomposing the product as a U3 gate. A small
//! dedicated complex type keeps the workspace dependency-free.

use std::ops::{Add, Div, Mul, Neg, Sub};

/// A complex number with `f64` parts.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct C64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

/// Shorthand constructor for [`C64`].
///
/// # Example
///
/// ```
/// use zac_circuit::complex::c64;
/// let z = c64(3.0, 4.0);
/// assert_eq!(z.norm(), 5.0);
/// ```
pub const fn c64(re: f64, im: f64) -> C64 {
    C64 { re, im }
}

impl C64 {
    /// Zero.
    pub const ZERO: C64 = c64(0.0, 0.0);
    /// One.
    pub const ONE: C64 = c64(1.0, 0.0);
    /// The imaginary unit.
    pub const I: C64 = c64(0.0, 1.0);

    /// `e^{iθ}`.
    pub fn cis(theta: f64) -> C64 {
        c64(theta.cos(), theta.sin())
    }

    /// Complex conjugate.
    pub fn conj(self) -> C64 {
        c64(self.re, -self.im)
    }

    /// Modulus `|z|`.
    pub fn norm(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared modulus `|z|²`.
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Argument (phase angle) in `(-π, π]`.
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Scales by a real factor.
    pub fn scale(self, s: f64) -> C64 {
        c64(self.re * s, self.im * s)
    }
}

impl Add for C64 {
    type Output = C64;
    fn add(self, rhs: C64) -> C64 {
        c64(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for C64 {
    type Output = C64;
    fn sub(self, rhs: C64) -> C64 {
        c64(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for C64 {
    type Output = C64;
    fn mul(self, rhs: C64) -> C64 {
        c64(self.re * rhs.re - self.im * rhs.im, self.re * rhs.im + self.im * rhs.re)
    }
}

impl Div for C64 {
    type Output = C64;
    fn div(self, rhs: C64) -> C64 {
        let d = rhs.norm_sqr();
        c64((self.re * rhs.re + self.im * rhs.im) / d, (self.im * rhs.re - self.re * rhs.im) / d)
    }
}

impl Neg for C64 {
    type Output = C64;
    fn neg(self) -> C64 {
        c64(-self.re, -self.im)
    }
}

impl std::fmt::Display for C64 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{:.4}+{:.4}i", self.re, self.im)
        } else {
            write!(f, "{:.4}-{:.4}i", self.re, -self.im)
        }
    }
}

/// A 2×2 complex matrix in row-major order: `[[a, b], [c, d]]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mat2 {
    /// Entries `[row][col]`.
    pub m: [[C64; 2]; 2],
}

impl Mat2 {
    /// The identity matrix.
    pub const IDENTITY: Mat2 = Mat2 { m: [[C64::ONE, C64::ZERO], [C64::ZERO, C64::ONE]] };

    /// Builds a matrix from entries `a b / c d`.
    pub const fn new(a: C64, b: C64, c: C64, d: C64) -> Self {
        Self { m: [[a, b], [c, d]] }
    }

    /// Matrix product `self · rhs` (applies `rhs` first when acting on kets).
    #[allow(clippy::should_implement_trait)] // workspace style: no operator overloading
    pub fn mul(self, rhs: Mat2) -> Mat2 {
        let mut out = [[C64::ZERO; 2]; 2];
        for (i, row) in out.iter_mut().enumerate() {
            for (j, cell) in row.iter_mut().enumerate() {
                *cell = self.m[i][0] * rhs.m[0][j] + self.m[i][1] * rhs.m[1][j];
            }
        }
        Mat2 { m: out }
    }

    /// Conjugate transpose.
    pub fn dagger(self) -> Mat2 {
        Mat2::new(
            self.m[0][0].conj(),
            self.m[1][0].conj(),
            self.m[0][1].conj(),
            self.m[1][1].conj(),
        )
    }

    /// Frobenius distance to `rhs`.
    pub fn distance(self, rhs: Mat2) -> f64 {
        let mut s = 0.0;
        for i in 0..2 {
            for j in 0..2 {
                s += (self.m[i][j] - rhs.m[i][j]).norm_sqr();
            }
        }
        s.sqrt()
    }

    /// Whether `self ≈ e^{iγ} rhs` for some global phase γ.
    pub fn approx_eq_up_to_phase(self, rhs: Mat2, tol: f64) -> bool {
        // Find the largest entry of rhs to anchor the phase.
        let mut best = (0, 0);
        let mut best_norm = 0.0;
        for i in 0..2 {
            for j in 0..2 {
                let n = rhs.m[i][j].norm();
                if n > best_norm {
                    best_norm = n;
                    best = (i, j);
                }
            }
        }
        if best_norm < tol {
            return self.distance(rhs) < tol;
        }
        let phase = self.m[best.0][best.1] / rhs.m[best.0][best.1];
        if (phase.norm() - 1.0).abs() > tol {
            return false;
        }
        let mut scaled = rhs;
        for i in 0..2 {
            for j in 0..2 {
                scaled.m[i][j] = scaled.m[i][j] * phase;
            }
        }
        self.distance(scaled) < tol
    }

    /// Whether the matrix is unitary within `tol`.
    pub fn is_unitary(self, tol: f64) -> bool {
        self.mul(self.dagger()).distance(Mat2::IDENTITY) < tol
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complex_field_ops() {
        let a = c64(1.0, 2.0);
        let b = c64(3.0, -1.0);
        assert_eq!(a + b, c64(4.0, 1.0));
        assert_eq!(a - b, c64(-2.0, 3.0));
        assert_eq!(a * b, c64(5.0, 5.0));
        let q = a / b;
        let back = q * b;
        assert!((back - a).norm() < 1e-12);
        assert_eq!(-a, c64(-1.0, -2.0));
    }

    #[test]
    fn cis_and_arg() {
        let z = C64::cis(std::f64::consts::FRAC_PI_3);
        assert!((z.norm() - 1.0).abs() < 1e-12);
        assert!((z.arg() - std::f64::consts::FRAC_PI_3).abs() < 1e-12);
    }

    #[test]
    fn matrix_identity_and_product() {
        let h = {
            let s = std::f64::consts::FRAC_1_SQRT_2;
            Mat2::new(c64(s, 0.0), c64(s, 0.0), c64(s, 0.0), c64(-s, 0.0))
        };
        assert!(h.is_unitary(1e-12));
        // H² = I.
        assert!(h.mul(h).distance(Mat2::IDENTITY) < 1e-12);
    }

    #[test]
    fn phase_equivalence() {
        let u = Mat2::new(C64::ONE, C64::ZERO, C64::ZERO, C64::cis(1.0));
        let mut v = u;
        let g = C64::cis(0.7);
        for i in 0..2 {
            for j in 0..2 {
                v.m[i][j] = v.m[i][j] * g;
            }
        }
        assert!(v.approx_eq_up_to_phase(u, 1e-12));
        assert!(!v.approx_eq_up_to_phase(Mat2::IDENTITY, 1e-9));
    }

    #[test]
    fn dagger_inverts_unitary() {
        let u = Mat2::new(
            C64::cis(0.3).scale(0.6),
            C64::cis(-1.2).scale(0.8),
            C64::cis(2.0).scale(0.8),
            C64::cis(0.5).scale(-0.6),
        );
        // Not exactly unitary; but dagger-mul yields Hermitian — just check shape.
        let p = u.mul(u.dagger());
        assert!((p.m[0][1] - p.m[1][0].conj()).norm() < 1e-12);
    }
}
