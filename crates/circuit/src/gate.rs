//! Gate definitions for the input circuit language.
//!
//! Input circuits may use the common textbook gates; preprocessing lowers
//! everything to the hardware set {CZ, U3} (paper Sec. IV, Fig. 4).

use crate::complex::{c64, Mat2, C64};

/// A single-qubit gate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OneQGate {
    /// Hadamard.
    H,
    /// Pauli X.
    X,
    /// Pauli Y.
    Y,
    /// Pauli Z.
    Z,
    /// Phase gate S = √Z.
    S,
    /// S†.
    Sdg,
    /// T = ⁴√Z.
    T,
    /// T†.
    Tdg,
    /// Rotation about X by the given angle (radians).
    Rx(f64),
    /// Rotation about Y by the given angle (radians).
    Ry(f64),
    /// Rotation about Z by the given angle (radians).
    Rz(f64),
    /// Phase gate `diag(1, e^{iθ})`.
    Phase(f64),
    /// The generic hardware 1Q gate `U3(θ, φ, λ)`.
    U3 {
        /// Polar rotation angle.
        theta: f64,
        /// Phase of the |1⟩ row.
        phi: f64,
        /// Phase of the |1⟩ column.
        lambda: f64,
    },
}

impl OneQGate {
    /// The gate's 2×2 unitary matrix.
    ///
    /// # Example
    ///
    /// ```
    /// use zac_circuit::gate::OneQGate;
    /// let u = OneQGate::X.matrix();
    /// assert!(u.is_unitary(1e-12));
    /// ```
    pub fn matrix(self) -> Mat2 {
        use std::f64::consts::FRAC_1_SQRT_2 as S;
        match self {
            Self::H => Mat2::new(c64(S, 0.0), c64(S, 0.0), c64(S, 0.0), c64(-S, 0.0)),
            Self::X => Mat2::new(C64::ZERO, C64::ONE, C64::ONE, C64::ZERO),
            Self::Y => Mat2::new(C64::ZERO, -C64::I, C64::I, C64::ZERO),
            Self::Z => Mat2::new(C64::ONE, C64::ZERO, C64::ZERO, -C64::ONE),
            Self::S => Mat2::new(C64::ONE, C64::ZERO, C64::ZERO, C64::I),
            Self::Sdg => Mat2::new(C64::ONE, C64::ZERO, C64::ZERO, -C64::I),
            Self::T => {
                Mat2::new(C64::ONE, C64::ZERO, C64::ZERO, C64::cis(std::f64::consts::FRAC_PI_4))
            }
            Self::Tdg => {
                Mat2::new(C64::ONE, C64::ZERO, C64::ZERO, C64::cis(-std::f64::consts::FRAC_PI_4))
            }
            Self::Rx(t) => {
                let (c, s) = ((t / 2.0).cos(), (t / 2.0).sin());
                Mat2::new(c64(c, 0.0), c64(0.0, -s), c64(0.0, -s), c64(c, 0.0))
            }
            Self::Ry(t) => {
                let (c, s) = ((t / 2.0).cos(), (t / 2.0).sin());
                Mat2::new(c64(c, 0.0), c64(-s, 0.0), c64(s, 0.0), c64(c, 0.0))
            }
            Self::Rz(t) => Mat2::new(C64::cis(-t / 2.0), C64::ZERO, C64::ZERO, C64::cis(t / 2.0)),
            Self::Phase(t) => Mat2::new(C64::ONE, C64::ZERO, C64::ZERO, C64::cis(t)),
            Self::U3 { theta, phi, lambda } => u3_matrix(theta, phi, lambda),
        }
    }
}

/// The matrix of `U3(θ, φ, λ)` in the OpenQASM convention:
///
/// ```text
/// [ cos(θ/2)              -e^{iλ}   sin(θ/2) ]
/// [ e^{iφ} sin(θ/2)        e^{i(φ+λ)} cos(θ/2) ]
/// ```
pub fn u3_matrix(theta: f64, phi: f64, lambda: f64) -> Mat2 {
    let (c, s) = ((theta / 2.0).cos(), (theta / 2.0).sin());
    Mat2::new(
        c64(c, 0.0),
        -(C64::cis(lambda).scale(s)),
        C64::cis(phi).scale(s),
        C64::cis(phi + lambda).scale(c),
    )
}

/// Decomposes a 2×2 unitary as `e^{iγ} · U3(θ, φ, λ)`.
///
/// Returns `(theta, phi, lambda, gamma)`.
///
/// # Panics
///
/// Panics (debug) if `u` is not unitary to 1e-6.
///
/// # Example
///
/// ```
/// use zac_circuit::gate::{u3_matrix, decompose_u3, OneQGate};
/// let (t, p, l, _g) = decompose_u3(OneQGate::H.matrix());
/// assert!(u3_matrix(t, p, l).approx_eq_up_to_phase(OneQGate::H.matrix(), 1e-9));
/// ```
pub fn decompose_u3(u: Mat2) -> (f64, f64, f64, f64) {
    debug_assert!(u.is_unitary(1e-6), "decompose_u3 requires a unitary input");
    let a = u.m[0][0];
    let b = u.m[0][1];
    let c = u.m[1][0];
    let d = u.m[1][1];
    let theta = 2.0 * c.norm().atan2(a.norm());
    const EPS: f64 = 1e-12;
    if c.norm() < EPS {
        // Diagonal: λ absorbs the full relative phase.
        let gamma = a.arg();
        let lambda = d.arg() - a.arg();
        (0.0, 0.0, lambda, gamma)
    } else if a.norm() < EPS {
        // Anti-diagonal: θ = π; set λ = 0.
        let gamma = c.arg();
        let phi = 0.0;
        let lambda = (-b).arg() - c.arg() + phi;
        (std::f64::consts::PI, phi, lambda, gamma)
    } else {
        let gamma = a.arg();
        let phi = c.arg() - gamma;
        let lambda = (-b).arg() - gamma;
        (theta, phi, lambda, gamma)
    }
}

/// A two-qubit gate kind.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TwoQKind {
    /// Controlled-X (control is the first operand).
    Cx,
    /// Controlled-Z (symmetric).
    Cz,
    /// Controlled-phase by the given angle (symmetric).
    Cp(f64),
    /// Swap.
    Swap,
}

/// One gate application in an input circuit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Gate {
    /// A single-qubit gate on `qubit`.
    OneQ {
        /// The gate.
        gate: OneQGate,
        /// Target qubit.
        qubit: usize,
    },
    /// A two-qubit gate on `(a, b)`; for controlled gates `a` is the control.
    TwoQ {
        /// The gate kind.
        kind: TwoQKind,
        /// First operand (control where applicable).
        a: usize,
        /// Second operand (target where applicable).
        b: usize,
    },
}

impl Gate {
    /// The qubits this gate touches (1 or 2 entries).
    pub fn qubits(&self) -> Vec<usize> {
        match *self {
            Gate::OneQ { qubit, .. } => vec![qubit],
            Gate::TwoQ { a, b, .. } => vec![a, b],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_named_gates_are_unitary() {
        let gates = [
            OneQGate::H,
            OneQGate::X,
            OneQGate::Y,
            OneQGate::Z,
            OneQGate::S,
            OneQGate::Sdg,
            OneQGate::T,
            OneQGate::Tdg,
            OneQGate::Rx(0.7),
            OneQGate::Ry(-1.3),
            OneQGate::Rz(2.9),
            OneQGate::Phase(0.4),
            OneQGate::U3 { theta: 1.0, phi: 2.0, lambda: 3.0 },
        ];
        for g in gates {
            assert!(g.matrix().is_unitary(1e-12), "{g:?} not unitary");
        }
    }

    #[test]
    fn s_is_t_squared() {
        let t2 = OneQGate::T.matrix().mul(OneQGate::T.matrix());
        assert!(t2.distance(OneQGate::S.matrix()) < 1e-12);
    }

    #[test]
    fn hzh_is_x() {
        let h = OneQGate::H.matrix();
        let z = OneQGate::Z.matrix();
        let x = h.mul(z).mul(h);
        assert!(x.distance(OneQGate::X.matrix()) < 1e-12);
    }

    #[test]
    fn u3_reproduces_named_gates() {
        use std::f64::consts::{FRAC_PI_2, PI};
        // H = U3(π/2, 0, π) up to phase; X = U3(π, 0, π).
        let h = u3_matrix(FRAC_PI_2, 0.0, PI);
        assert!(h.approx_eq_up_to_phase(OneQGate::H.matrix(), 1e-12));
        let x = u3_matrix(PI, 0.0, PI);
        assert!(x.approx_eq_up_to_phase(OneQGate::X.matrix(), 1e-12));
    }

    #[test]
    fn decompose_roundtrips_named_gates() {
        for g in [
            OneQGate::H,
            OneQGate::X,
            OneQGate::Y,
            OneQGate::Z,
            OneQGate::S,
            OneQGate::T,
            OneQGate::Rz(0.123),
            OneQGate::Rx(2.5),
            OneQGate::Ry(-0.9),
            OneQGate::Phase(1.1),
        ] {
            let u = g.matrix();
            let (t, p, l, gamma) = decompose_u3(u);
            let mut rec = u3_matrix(t, p, l);
            let ph = C64::cis(gamma);
            for i in 0..2 {
                for j in 0..2 {
                    rec.m[i][j] = rec.m[i][j] * ph;
                }
            }
            assert!(rec.distance(u) < 1e-9, "{g:?}: distance {}", rec.distance(u));
        }
    }

    #[test]
    fn gate_qubits() {
        let g1 = Gate::OneQ { gate: OneQGate::H, qubit: 3 };
        let g2 = Gate::TwoQ { kind: TwoQKind::Cx, a: 1, b: 2 };
        assert_eq!(g1.qubits(), vec![3]);
        assert_eq!(g2.qubits(), vec![1, 2]);
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn decompose_roundtrips_random_products(
                angles in proptest::collection::vec((-3.1..3.1f64, -3.1..3.1f64, -3.1..3.1f64), 1..5)
            ) {
                // Random products of U3s are generic unitaries.
                let mut u = Mat2::IDENTITY;
                for (t, p, l) in angles {
                    u = u3_matrix(t, p, l).mul(u);
                }
                let (t, p, l, gamma) = decompose_u3(u);
                let mut rec = u3_matrix(t, p, l);
                let ph = C64::cis(gamma);
                for i in 0..2 {
                    for j in 0..2 {
                        rec.m[i][j] = rec.m[i][j] * ph;
                    }
                }
                prop_assert!(rec.distance(u) < 1e-8);
            }
        }
    }
}
