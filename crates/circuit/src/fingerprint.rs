//! Stable content fingerprints for compilation caching.
//!
//! Every compiler in this workspace is deterministic given its
//! configuration, so compile outputs are memoizable by *(circuit content,
//! compiler identity)*. This module supplies the circuit half of that key: a
//! 64-bit FNV-1a digest over the staged circuit's content, plus the
//! [`Fingerprint`] writer the compiler half (`zac_core::Compiler`
//! implementations) folds its own configuration into.
//!
//! The digest is **stable by construction**: every multi-byte value is
//! serialized to explicit little-endian bytes before hashing (so the result
//! is independent of host endianness and pointer width), floats are hashed
//! via their IEEE-754 bit patterns, and variable-length runs are
//! length-prefixed so adjacent fields can never alias (`["ab","c"]` vs
//! `["a","bc"]`). The exact values are locked by golden tests below; cache
//! entries persisted to disk stay valid across processes, machines and
//! rebuilds as long as those tests hold.

use crate::stages::{Gate2, RydbergStage, StagedCircuit, U3Op};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// An incremental FNV-1a 64-bit hasher with typed, self-delimiting writes.
///
/// Unlike `std::hash::Hasher`, the output is specified: it never changes
/// across Rust versions, platforms or process runs, which is what makes it
/// usable as a persistent cache key.
///
/// # Example
///
/// ```
/// use zac_circuit::Fingerprint;
/// let mut a = Fingerprint::new();
/// a.write_str("zac");
/// a.write_u64(7);
/// let mut b = Fingerprint::new();
/// b.write_str("zac");
/// b.write_u64(7);
/// assert_eq!(a.finish(), b.finish());
/// ```
#[derive(Debug, Clone)]
pub struct Fingerprint {
    state: u64,
}

impl Default for Fingerprint {
    fn default() -> Self {
        Self::new()
    }
}

impl Fingerprint {
    /// A fresh hasher at the FNV-1a offset basis.
    pub fn new() -> Self {
        Self { state: FNV_OFFSET }
    }

    /// Hashes raw bytes (FNV-1a inner loop).
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Hashes one byte.
    pub fn write_u8(&mut self, v: u8) {
        self.write_bytes(&[v]);
    }

    /// Hashes a `u64` as 8 little-endian bytes (endianness-independent).
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Hashes a `usize` widened to `u64` (pointer-width-independent).
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Hashes an `f64` via its IEEE-754 bit pattern. `NaN` payloads and
    /// `-0.0` vs `0.0` are distinguished — bit-identical inputs, and only
    /// those, fingerprint identically.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Hashes a bool as one byte.
    pub fn write_bool(&mut self, v: bool) {
        self.write_u8(u8::from(v));
    }

    /// Hashes a string, length-prefixed so consecutive strings never alias.
    pub fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        self.write_bytes(s.as_bytes());
    }

    /// The current digest.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

fn write_u3(fp: &mut Fingerprint, op: &U3Op) {
    fp.write_usize(op.qubit);
    fp.write_f64(op.theta);
    fp.write_f64(op.phi);
    fp.write_f64(op.lambda);
}

fn write_stage(fp: &mut Fingerprint, stage: &RydbergStage) {
    fp.write_usize(stage.pre_1q.len());
    for op in &stage.pre_1q {
        write_u3(fp, op);
    }
    fp.write_usize(stage.gates.len());
    for &Gate2 { id, a, b } in &stage.gates {
        fp.write_usize(id);
        fp.write_usize(a);
        fp.write_usize(b);
    }
}

impl StagedCircuit {
    /// A stable 64-bit content fingerprint: name, qubit count, every stage
    /// (its `pre_1q` U3 angles and CZ gates in order), and the trailing U3
    /// run. Order-sensitive throughout — reordering stages, gates within a
    /// stage, or 1Q gates all produce a different digest.
    ///
    /// The circuit *name* participates because compiled outputs embed it
    /// (`ExecutionSummary::name`): two structurally identical circuits under
    /// different names must not share a cache entry.
    ///
    /// # Example
    ///
    /// ```
    /// use zac_circuit::{bench_circuits, preprocess};
    /// let a = preprocess(&bench_circuits::ghz(8)).fingerprint();
    /// let b = preprocess(&bench_circuits::ghz(8)).fingerprint();
    /// let c = preprocess(&bench_circuits::ghz(9)).fingerprint();
    /// assert_eq!(a, b);
    /// assert_ne!(a, c);
    /// ```
    pub fn fingerprint(&self) -> u64 {
        let mut fp = Fingerprint::new();
        fp.write_str(&self.name);
        fp.write_usize(self.num_qubits);
        fp.write_usize(self.stages.len());
        for stage in &self.stages {
            write_stage(&mut fp, stage);
        }
        fp.write_usize(self.trailing_1q.len());
        for op in &self.trailing_1q {
            write_u3(&mut fp, op);
        }
        fp.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> StagedCircuit {
        StagedCircuit {
            name: "fp".into(),
            num_qubits: 4,
            stages: vec![
                RydbergStage {
                    pre_1q: vec![U3Op { qubit: 0, theta: 1.0, phi: 0.5, lambda: -0.5 }],
                    gates: vec![Gate2 { id: 0, a: 0, b: 1 }, Gate2 { id: 1, a: 2, b: 3 }],
                },
                RydbergStage { pre_1q: vec![], gates: vec![Gate2 { id: 2, a: 1, b: 2 }] },
            ],
            trailing_1q: vec![U3Op { qubit: 3, theta: 0.25, phi: 0.0, lambda: 0.0 }],
        }
    }

    /// Golden values: the digest is part of the on-disk cache format. If
    /// this test ever fails, the hashing scheme changed and every persisted
    /// cache entry is invalidated — bump the disk-layer version alongside.
    #[test]
    fn fingerprint_golden_values() {
        let mut fp = Fingerprint::new();
        assert_eq!(fp.finish(), 0xcbf2_9ce4_8422_2325); // offset basis
        fp.write_bytes(b"a");
        assert_eq!(fp.finish(), 0xaf63_dc4c_8601_ec8c); // FNV-1a("a")
        let mut fp = Fingerprint::new();
        fp.write_bytes(b"foobar");
        assert_eq!(fp.finish(), 0x85944171f73967e8); // FNV-1a test vector
        assert_eq!(sample().fingerprint(), 0x24f4_1392_fe76_fe3f);
    }

    #[test]
    fn stable_across_invocations_and_clones() {
        let s = sample();
        assert_eq!(s.fingerprint(), s.fingerprint());
        assert_eq!(s.clone().fingerprint(), s.fingerprint());
    }

    #[test]
    fn every_field_changes_the_digest() {
        let base = sample().fingerprint();
        let mut s = sample();
        s.name = "fq".into();
        assert_ne!(s.fingerprint(), base, "name");
        let mut s = sample();
        s.num_qubits = 5;
        assert_ne!(s.fingerprint(), base, "num_qubits");
        let mut s = sample();
        s.stages[0].gates[0].a = 3;
        s.stages[0].gates[0].b = 0; // still a valid circuit shape
        assert_ne!(s.fingerprint(), base, "gate operand");
        let mut s = sample();
        s.stages[0].gates[1].id = 9;
        assert_ne!(s.fingerprint(), base, "gate id");
        let mut s = sample();
        s.stages[0].pre_1q[0].theta += 1e-9;
        assert_ne!(s.fingerprint(), base, "u3 angle");
        let mut s = sample();
        s.trailing_1q.clear();
        assert_ne!(s.fingerprint(), base, "trailing 1q");
    }

    #[test]
    fn stage_boundaries_matter() {
        // Same gates, split across stages differently.
        let merged = sample();
        let split = merged.with_max_stage_width(1);
        assert_eq!(split.num_2q_gates(), merged.num_2q_gates());
        assert_ne!(split.fingerprint(), merged.fingerprint());
    }

    #[test]
    fn length_prefix_prevents_string_aliasing() {
        let mut a = Fingerprint::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = Fingerprint::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn float_hash_distinguishes_signed_zero() {
        let mut a = Fingerprint::new();
        a.write_f64(0.0);
        let mut b = Fingerprint::new();
        b.write_f64(-0.0);
        assert_ne!(a.finish(), b.finish());
    }
}
