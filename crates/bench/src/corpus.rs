//! OpenQASM corpus ingestion: a directory of `.qasm` files → a benchmark
//! suite for [`crate::BatchRunner`].
//!
//! The paper evaluates on QASMBench OpenQASM 2.0 files; this module is the
//! path from such a corpus on disk to `Vec<StagedCircuit>`. Design rules,
//! mirroring the sweep harness:
//!
//! * **failures are values** — unreadable, oversized, or unparseable files
//!   become [`LoadFailure`] entries (the analogue of
//!   [`crate::CellFailure`]), never panics, so a single bad file cannot
//!   take down a sweep;
//! * **deterministic ordering** — files load in sorted file-name order
//!   regardless of directory-iteration order, so corpus sweeps are
//!   reproducible and cache-friendly across machines;
//! * **per-file size caps** — [`CorpusConfig::max_file_bytes`] bounds what
//!   the loader will even read, keeping accidental multi-gigabyte inputs
//!   out of memory.
//!
//! ```no_run
//! use zac_bench::{corpus::load_corpus, default_compilers, BatchRunner};
//!
//! let corpus = load_corpus("tests/corpus");
//! for f in &corpus.failures {
//!     eprintln!("skipped {}: {}", f.file, f.reason);
//! }
//! let rows = BatchRunner::parallel().run(&default_compilers(), &corpus.suite());
//! assert_eq!(rows.len(), corpus.entries.len());
//! ```

use std::fs;
use std::path::{Path, PathBuf};
use zac_circuit::{preprocess, qasm, StagedCircuit};

/// Default per-file size cap: 1 MiB of QASM text (QASMBench's largest
/// "small"/"medium" files are well under this).
pub const DEFAULT_MAX_FILE_BYTES: u64 = 1 << 20;

/// Loader limits.
#[derive(Debug, Clone)]
pub struct CorpusConfig {
    /// Files larger than this many bytes are rejected (as a
    /// [`LoadFailure`]) without being read.
    pub max_file_bytes: u64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        Self { max_file_bytes: DEFAULT_MAX_FILE_BYTES }
    }
}

/// A file the loader could not turn into a circuit — the corpus analogue of
/// [`crate::CellFailure`]: observed as a value, never a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadFailure {
    /// File name (or the directory path, for directory-level errors).
    pub file: String,
    /// What went wrong.
    pub reason: String,
}

/// One successfully loaded corpus circuit.
#[derive(Debug, Clone)]
pub struct CorpusEntry {
    /// Source file name within the corpus directory.
    pub file: String,
    /// The preprocessed circuit, named after the file stem.
    pub staged: StagedCircuit,
}

/// A loaded corpus: parsed circuits in deterministic (sorted file-name)
/// order, plus every failure observed along the way.
#[derive(Debug, Clone, Default)]
pub struct Corpus {
    /// Successfully loaded circuits, sorted by file name.
    pub entries: Vec<CorpusEntry>,
    /// Files that could not be loaded, sorted by file name.
    pub failures: Vec<LoadFailure>,
}

impl Corpus {
    /// The suite to hand to [`crate::BatchRunner::run`].
    pub fn suite(&self) -> Vec<StagedCircuit> {
        self.entries.iter().map(|e| e.staged.clone()).collect()
    }

    /// Whether every file loaded cleanly.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }

    /// Number of successfully loaded circuits.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no circuit loaded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Loads every `.qasm` file under `dir` with default limits.
///
/// Never panics: unreadable directories and bad files surface on
/// [`Corpus::failures`].
pub fn load_corpus(dir: impl AsRef<Path>) -> Corpus {
    load_corpus_with(dir, &CorpusConfig::default())
}

/// [`load_corpus`] with explicit limits.
pub fn load_corpus_with(dir: impl AsRef<Path>, config: &CorpusConfig) -> Corpus {
    let dir = dir.as_ref();
    let mut corpus = Corpus::default();
    let read_dir = match fs::read_dir(dir) {
        Ok(it) => it,
        Err(e) => {
            corpus.failures.push(LoadFailure {
                file: dir.display().to_string(),
                reason: format!("cannot read directory: {e}"),
            });
            return corpus;
        }
    };
    let mut files: Vec<PathBuf> = read_dir
        .filter_map(Result::ok)
        .map(|entry| entry.path())
        .filter(|p| p.is_file() && p.extension().is_some_and(|x| x.eq_ignore_ascii_case("qasm")))
        .collect();
    // Deterministic ordering independent of the filesystem's iteration
    // order (and therefore reproducible across machines and runs).
    files.sort_by(|a, b| a.file_name().cmp(&b.file_name()));

    for path in files {
        let file = path.file_name().unwrap_or_default().to_string_lossy().into_owned();
        match load_file(&path, config) {
            Ok(staged) => corpus.entries.push(CorpusEntry { file, staged }),
            Err(reason) => corpus.failures.push(LoadFailure { file, reason }),
        }
    }
    corpus
}

fn load_file(path: &Path, config: &CorpusConfig) -> Result<StagedCircuit, String> {
    let meta = fs::metadata(path).map_err(|e| format!("cannot stat: {e}"))?;
    if meta.len() > config.max_file_bytes {
        return Err(format!(
            "file is {} bytes, over the {}-byte cap",
            meta.len(),
            config.max_file_bytes
        ));
    }
    let source = fs::read_to_string(path).map_err(|e| format!("cannot read: {e}"))?;
    let name = path
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "circuit".into());
    let circuit = qasm::parse_qasm(&source, &name).map_err(|e| e.to_string())?;
    Ok(preprocess(&circuit))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A fresh scratch directory under the system temp dir.
    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("zac-corpus-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create scratch dir");
        dir
    }

    #[test]
    fn loader_orders_deterministically_and_captures_failures() {
        let dir = scratch("basic");
        fs::write(dir.join("c_late.qasm"), "OPENQASM 2.0; qreg q[2]; cx q[0],q[1];").unwrap();
        fs::write(dir.join("a_bad.qasm"), "OPENQASM 2.0; qreg q[1]; bogus q[0];").unwrap();
        fs::write(dir.join("b_good.qasm"), "OPENQASM 2.0; qreg q[2]; h q;").unwrap();
        fs::write(dir.join("notes.txt"), "not qasm; ignored").unwrap();

        let corpus = load_corpus(&dir);
        let files: Vec<&str> = corpus.entries.iter().map(|e| e.file.as_str()).collect();
        assert_eq!(files, ["b_good.qasm", "c_late.qasm"]);
        assert_eq!(corpus.entries[0].staged.name, "b_good");
        assert_eq!(corpus.entries[0].staged.num_1q_gates(), 2);
        assert_eq!(corpus.failures.len(), 1);
        assert_eq!(corpus.failures[0].file, "a_bad.qasm");
        assert!(corpus.failures[0].reason.contains("bogus"), "{:?}", corpus.failures);
        assert!(!corpus.is_clean());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn size_cap_is_a_failure_value_not_a_panic() {
        let dir = scratch("cap");
        fs::write(dir.join("big.qasm"), "OPENQASM 2.0; qreg q[2]; h q[0]; ".repeat(16)).unwrap();
        let corpus = load_corpus_with(&dir, &CorpusConfig { max_file_bytes: 64 });
        assert!(corpus.is_empty());
        assert_eq!(corpus.failures.len(), 1);
        assert!(corpus.failures[0].reason.contains("cap"), "{:?}", corpus.failures);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_directory_is_a_failure_value() {
        let corpus = load_corpus("/nonexistent/zac-corpus-definitely-missing");
        assert!(corpus.is_empty());
        assert_eq!(corpus.failures.len(), 1);
        assert!(corpus.failures[0].reason.contains("directory"), "{:?}", corpus.failures);
    }

    /// The bundled mini-corpus stays in sync with the loader: every file
    /// parses, and the suite feeds straight into a sweep.
    #[test]
    fn bundled_corpus_loads_clean() {
        let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/corpus");
        let corpus = load_corpus(dir);
        assert!(corpus.is_clean(), "{:#?}", corpus.failures);
        assert_eq!(corpus.len(), 10);
        for e in &corpus.entries {
            assert!(e.staged.num_qubits > 0, "{}", e.file);
        }
    }
}
