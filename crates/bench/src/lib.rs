//! Shared harness for regenerating the paper's tables and figures.
//!
//! Every `benches/*.rs` target (plain binaries, `harness = false`) uses this
//! crate to run the compilers over the paper's benchmark suite and print the
//! same rows/series the paper reports.
//!
//! Since the [`zac_core::Compiler`]-trait refactor the harness is fully
//! generic: [`default_compilers`] assembles the paper's six-compiler lineup
//! (Fig. 8 legend order), [`run_compilers`] drives any compiler slice over
//! one circuit, and [`BatchRunner`] fans a suite × compiler matrix out
//! across cores with rayon. Results are independent per (circuit, compiler)
//! cell and the parallel scheduler preserves input order, so parallel runs
//! are identical to serial runs (asserted in this crate's tests).

use rayon::prelude::*;
use zac_arch::Architecture;
use zac_baselines::{Atomique, Enola, Nalac, Sc};
use zac_circuit::{bench_circuits, preprocess, StagedCircuit};
use zac_core::{CompileError, Compiler, GateCounts, Zac, ZacConfig};
use zac_fidelity::FidelityReport;

/// One compiler's results on one circuit.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Compiler label as used in the paper's legends.
    pub compiler: String,
    /// Fidelity report.
    pub report: FidelityReport,
    /// Named gate/error counters.
    pub counts: GateCounts,
    /// Compile wall time in seconds.
    pub compile_secs: f64,
}

impl RunResult {
    /// Total fidelity.
    pub fn fidelity(&self) -> f64 {
        self.report.total()
    }
}

/// All compilers' results on one circuit.
#[derive(Debug, Clone)]
pub struct ComparisonRow {
    /// Circuit name (paper naming, e.g. `bv_n14`).
    pub name: String,
    /// Qubit count.
    pub qubits: usize,
    /// (2Q, 1Q) gate counts after our preprocessing.
    pub gates: (usize, usize),
    /// (2Q, 1Q) gate counts the paper reports.
    pub paper_gates: (usize, usize),
    /// Results keyed by compiler label.
    pub results: Vec<RunResult>,
}

impl ComparisonRow {
    /// Looks up a compiler's result by label.
    pub fn result(&self, compiler: &str) -> Option<&RunResult> {
        self.results.iter().find(|r| r.compiler == compiler)
    }
}

/// Compiler labels in the paper's Fig. 8 legend order.
pub const COMPILERS: [&str; 6] =
    ["SC-Heron", "SC-Grid", "Monolithic-Atomique", "Monolithic-Enola", "Zoned-NALAC", "Zoned-ZAC"];

/// The harness's ZAC configuration (SA budget matching the paper's 1000
/// iterations).
pub fn zac_config() -> ZacConfig {
    ZacConfig::full()
}

/// The paper's six-compiler lineup (Fig. 8 legend order): two SC machines,
/// the two monolithic baselines, NALAC, and ZAC on the reference zoned
/// architecture. All behind the unified [`Compiler`] trait.
pub fn default_compilers() -> Vec<Box<dyn Compiler>> {
    vec![
        Box::new(Sc::heron()),
        Box::new(Sc::grid()),
        Box::new(Atomique::default()),
        Box::new(Enola::default()),
        Box::new(Nalac::default()),
        Box::new(Zac::with_config(Architecture::reference(), zac_config())),
    ]
}

/// Runs one compiler on one circuit. Circuits a compiler cannot fit
/// ([`CompileError::CircuitTooLarge`]) yield `None` — the paper's figures
/// leave those cells blank. Any *other* failure is a compiler bug, not a
/// capacity limit, so it is surfaced on stderr rather than silently
/// shrinking the aggregate statistics.
pub fn run_cell(compiler: &dyn Compiler, staged: &StagedCircuit) -> Option<RunResult> {
    match compiler.compile(staged) {
        Ok(out) => Some(RunResult {
            compiler: compiler.name().to_owned(),
            report: out.report,
            counts: out.counts,
            compile_secs: out.compile_time.as_secs_f64(),
        }),
        Err(CompileError::CircuitTooLarge { .. }) => None,
        Err(e) => {
            eprintln!("warning: {} failed on {}: {e}", compiler.name(), staged.name);
            None
        }
    }
}

/// Runs every compiler in `compilers` on one staged circuit, skipping the
/// cells [`run_cell`] skips.
pub fn run_compilers(compilers: &[Box<dyn Compiler>], staged: &StagedCircuit) -> Vec<RunResult> {
    compilers.iter().filter_map(|compiler| run_cell(&**compiler, staged)).collect()
}

/// Runs the default six-compiler lineup on one staged circuit.
pub fn compare_all(staged: &StagedCircuit) -> Vec<RunResult> {
    run_compilers(&default_compilers(), staged)
}

/// Execution strategy for a suite × compiler sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BatchMode {
    /// Fan the (circuit, compiler) cells out across cores with rayon.
    #[default]
    Parallel,
    /// One cell at a time, in order (reference semantics).
    Serial,
}

/// Drives a benchmark suite × compiler matrix, optionally in parallel.
///
/// Each (circuit, compiler) cell is an independent compilation (every
/// compiler in this workspace is deterministic given its config, including
/// ZAC's seeded SA), so the parallel schedule produces results identical to
/// the serial one; only wall-clock timing differs. When the *timing* is the
/// measurement (Fig. 12), use [`BatchRunner::serial`]: per-cell
/// `compile_secs` under the parallel mode includes contention from
/// co-running cells.
///
/// # Example
///
/// ```
/// use zac_bench::{default_compilers, BatchRunner};
/// use zac_circuit::{bench_circuits, preprocess};
///
/// let suite = vec![preprocess(&bench_circuits::ghz(8))];
/// let rows = BatchRunner::parallel().run(&default_compilers(), &suite);
/// assert_eq!(rows.len(), 1);
/// assert_eq!(rows[0].results.len(), 6);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct BatchRunner {
    mode: BatchMode,
}

impl BatchRunner {
    /// A runner that sweeps in parallel (the default).
    pub fn parallel() -> Self {
        Self { mode: BatchMode::Parallel }
    }

    /// A runner that sweeps serially (reference path for determinism
    /// checks).
    pub fn serial() -> Self {
        Self { mode: BatchMode::Serial }
    }

    /// The runner's mode.
    pub fn mode(&self) -> BatchMode {
        self.mode
    }

    /// Runs every compiler on every circuit, returning one row per circuit
    /// (suite order) with results in compiler order.
    pub fn run(
        &self,
        compilers: &[Box<dyn Compiler>],
        suite: &[StagedCircuit],
    ) -> Vec<ComparisonRow> {
        // Flatten to (circuit, compiler) cells so rayon balances the load:
        // a slow cell (ZAC on ising_n98) overlaps many fast ones.
        let cells: Vec<(usize, usize)> =
            (0..suite.len()).flat_map(|ci| (0..compilers.len()).map(move |ki| (ci, ki))).collect();
        let compile_cell = |&(ci, ki): &(usize, usize)| run_cell(&*compilers[ki], &suite[ci]);
        let outputs: Vec<Option<RunResult>> = match self.mode {
            BatchMode::Parallel => cells.par_iter().map(compile_cell).collect(),
            BatchMode::Serial => cells.iter().map(compile_cell).collect(),
        };

        let mut rows: Vec<ComparisonRow> = suite
            .iter()
            .map(|staged| ComparisonRow {
                name: staged.name.clone(),
                qubits: staged.num_qubits,
                gates: (staged.num_2q_gates(), staged.num_1q_gates()),
                paper_gates: (0, 0),
                results: Vec::new(),
            })
            .collect();
        for ((ci, _), result) in cells.into_iter().zip(outputs) {
            if let Some(r) = result {
                rows[ci].results.push(r);
            }
        }
        rows
    }
}

/// Runs the full Fig. 8 comparison over the paper's 17-circuit suite,
/// fanning the suite × compiler matrix out across cores.
pub fn run_architecture_comparison() -> Vec<ComparisonRow> {
    let entries = bench_circuits::paper_suite();
    let suite: Vec<StagedCircuit> =
        entries.iter().map(|entry| preprocess(&entry.circuit)).collect();
    let mut rows = BatchRunner::parallel().run(&default_compilers(), &suite);
    for (row, entry) in rows.iter_mut().zip(&entries) {
        row.paper_gates = (entry.paper_2q, entry.paper_1q);
    }
    rows
}

/// Geometric mean over positive values (0 if any ≤ 0; panics when empty).
pub fn geomean(values: &[f64]) -> f64 {
    zac_fidelity::geometric_mean(values)
}

/// Geometric mean of one metric across rows for one compiler (skipping
/// circuits the compiler could not handle).
pub fn compiler_geomean(
    rows: &[ComparisonRow],
    compiler: &str,
    f: impl Fn(&RunResult) -> f64,
) -> f64 {
    let vals: Vec<f64> = rows.iter().filter_map(|r| r.result(compiler).map(&f)).collect();
    if vals.is_empty() {
        0.0
    } else {
        geomean(&vals)
    }
}

/// Prints a header line for a bench report.
pub fn print_header(title: &str, paper_claim: &str) {
    println!("\n================================================================");
    println!("{title}");
    println!("paper: {paper_claim}");
    println!("================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compare_all_covers_six_compilers_on_small_circuit() {
        let staged = preprocess(&bench_circuits::ghz(10));
        let results = compare_all(&staged);
        assert_eq!(results.len(), 6);
        for r in &results {
            assert!(COMPILERS.contains(&r.compiler.as_str()));
            assert!((0.0..=1.0).contains(&r.fidelity()), "{}: {}", r.compiler, r.fidelity());
        }
    }

    #[test]
    fn default_lineup_matches_legend_order() {
        let names: Vec<String> = default_compilers().iter().map(|c| c.name().to_owned()).collect();
        assert_eq!(names, COMPILERS);
    }

    #[test]
    fn zac_beats_monolithic_on_ghz() {
        let staged = preprocess(&bench_circuits::ghz(23));
        let results = compare_all(&staged);
        let get = |label: &str| results.iter().find(|r| r.compiler == label).unwrap().fidelity();
        assert!(get("Zoned-ZAC") > get("Monolithic-Enola"));
        assert!(get("Zoned-ZAC") > get("Monolithic-Atomique"));
    }

    #[test]
    fn counts_are_named_and_consistent() {
        let staged = preprocess(&bench_circuits::ghz(10));
        let results = compare_all(&staged);
        let zac = results.iter().find(|r| r.compiler == "Zoned-ZAC").unwrap();
        assert_eq!(zac.counts.g2, 9);
        assert_eq!(zac.counts.n_exc, 0);
        let enola = results.iter().find(|r| r.compiler == "Monolithic-Enola").unwrap();
        assert_eq!(enola.counts.n_exc, 9 * 8);
    }

    /// The tentpole guarantee: a rayon-parallel sweep is indistinguishable
    /// from the serial reference, bit-for-bit, modulo wall-clock timing.
    #[test]
    fn batch_runner_parallel_matches_serial() {
        let suite: Vec<StagedCircuit> = [
            bench_circuits::ghz(16),
            bench_circuits::bv(14, 13),
            bench_circuits::ising(20),
            bench_circuits::qft(8),
        ]
        .iter()
        .map(preprocess)
        .collect();
        let par = BatchRunner::parallel().run(&default_compilers(), &suite);
        let ser = BatchRunner::serial().run(&default_compilers(), &suite);
        assert_eq!(par.len(), ser.len());
        for (p, s) in par.iter().zip(&ser) {
            assert_eq!(p.name, s.name);
            assert_eq!(p.qubits, s.qubits);
            assert_eq!(p.gates, s.gates);
            assert_eq!(p.results.len(), s.results.len(), "{}", p.name);
            for (pr, sr) in p.results.iter().zip(&s.results) {
                assert_eq!(pr.compiler, sr.compiler);
                // Bit-exact equality of every f64 metric (timing excluded:
                // wall clocks differ between any two runs).
                assert_eq!(pr.report, sr.report, "{} / {}", p.name, pr.compiler);
                assert_eq!(pr.counts, sr.counts, "{} / {}", p.name, pr.compiler);
            }
        }
    }

    #[test]
    fn batch_runner_skips_oversized_cells() {
        // 150 qubits exceed both SC machines and both 10×10 monolithic
        // arrays (Enola: 100 sites; Atomique: 200 slots still fits).
        let suite = vec![preprocess(&bench_circuits::ghz(150))];
        let rows = BatchRunner::parallel().run(&default_compilers(), &suite);
        let names: Vec<&str> = rows[0].results.iter().map(|r| r.compiler.as_str()).collect();
        assert!(!names.contains(&"SC-Heron"));
        assert!(!names.contains(&"SC-Grid"));
        assert!(!names.contains(&"Monolithic-Enola"));
        assert!(names.contains(&"Zoned-NALAC"));
        assert!(names.contains(&"Zoned-ZAC"));
    }
}
