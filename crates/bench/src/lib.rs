//! Shared harness for regenerating the paper's tables and figures.
//!
//! Every `benches/*.rs` target (plain binaries, `harness = false`) uses this
//! crate to run the compilers over the paper's benchmark suite and print the
//! same rows/series the paper reports. See EXPERIMENTS.md for the recorded
//! paper-vs-measured comparison.

use zac_arch::Architecture;
use zac_baselines::{compile_atomique, compile_enola, compile_nalac, compile_sc, ScMachine};
use zac_circuit::{bench_circuits, preprocess, StagedCircuit};
use zac_core::{Zac, ZacConfig};
use zac_fidelity::{FidelityReport, NeutralAtomParams};

/// One compiler's results on one circuit.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Compiler label as used in the paper's legends.
    pub compiler: &'static str,
    /// Fidelity report.
    pub report: FidelityReport,
    /// Counters: (g1, g2, n_exc, n_tran).
    pub counts: (usize, usize, usize, usize),
    /// Compile wall time in seconds.
    pub compile_secs: f64,
}

impl RunResult {
    /// Total fidelity.
    pub fn fidelity(&self) -> f64 {
        self.report.total()
    }
}

/// All compilers' results on one circuit.
#[derive(Debug, Clone)]
pub struct ComparisonRow {
    /// Circuit name (paper naming, e.g. `bv_n14`).
    pub name: String,
    /// Qubit count.
    pub qubits: usize,
    /// (2Q, 1Q) gate counts after our preprocessing.
    pub gates: (usize, usize),
    /// (2Q, 1Q) gate counts the paper reports.
    pub paper_gates: (usize, usize),
    /// Results keyed by compiler label.
    pub results: Vec<RunResult>,
}

impl ComparisonRow {
    /// Looks up a compiler's result by label.
    pub fn result(&self, compiler: &str) -> Option<&RunResult> {
        self.results.iter().find(|r| r.compiler == compiler)
    }
}

/// Compiler labels in the paper's Fig. 8 legend order.
pub const COMPILERS: [&str; 6] = [
    "SC-Heron",
    "SC-Grid",
    "Monolithic-Atomique",
    "Monolithic-Enola",
    "Zoned-NALAC",
    "Zoned-ZAC",
];

/// The harness's ZAC configuration (SA budget matching the paper's 1000
/// iterations).
pub fn zac_config() -> ZacConfig {
    ZacConfig::full()
}

fn to_run(
    compiler: &'static str,
    report: FidelityReport,
    counts: (usize, usize, usize, usize),
    secs: f64,
) -> RunResult {
    RunResult { compiler, report, counts, compile_secs: secs }
}

/// Runs every compiler of Fig. 8 on one staged circuit.
pub fn compare_all(staged: &StagedCircuit) -> Vec<RunResult> {
    let params = NeutralAtomParams::reference();
    let mut out = Vec::new();

    if let Ok(r) = compile_sc(staged, ScMachine::Heron) {
        let s = &r.summary;
        out.push(to_run(
            "SC-Heron",
            r.report,
            (s.g1, s.g2, s.n_exc, s.n_tran),
            r.compile_time.as_secs_f64(),
        ));
    }
    if let Ok(r) = compile_sc(staged, ScMachine::Grid) {
        let s = &r.summary;
        out.push(to_run(
            "SC-Grid",
            r.report,
            (s.g1, s.g2, s.n_exc, s.n_tran),
            r.compile_time.as_secs_f64(),
        ));
    }
    {
        let r = compile_atomique(staged, 10, 10, &params);
        let s = &r.summary;
        out.push(to_run(
            "Monolithic-Atomique",
            r.report,
            (s.g1, s.g2, s.n_exc, s.n_tran),
            r.compile_time.as_secs_f64(),
        ));
    }
    if let Ok(r) = compile_enola(staged, 10, 10, &params) {
        let s = &r.summary;
        out.push(to_run(
            "Monolithic-Enola",
            r.report,
            (s.g1, s.g2, s.n_exc, s.n_tran),
            r.compile_time.as_secs_f64(),
        ));
    }
    {
        let r = compile_nalac(staged, 20, &params);
        let s = &r.summary;
        out.push(to_run(
            "Zoned-NALAC",
            r.report,
            (s.g1, s.g2, s.n_exc, s.n_tran),
            r.compile_time.as_secs_f64(),
        ));
    }
    {
        let zac = Zac::with_config(Architecture::reference(), zac_config());
        if let Ok(r) = zac.compile_staged(staged) {
            let s = &r.summary;
            out.push(to_run(
                "Zoned-ZAC",
                r.report,
                (s.g1, s.g2, s.n_exc, s.n_tran),
                r.compile_time.as_secs_f64(),
            ));
        }
    }
    out
}

/// Runs the full Fig. 8 comparison over the paper's 17-circuit suite.
pub fn run_architecture_comparison() -> Vec<ComparisonRow> {
    bench_circuits::paper_suite()
        .into_iter()
        .map(|entry| {
            let staged = preprocess(&entry.circuit);
            ComparisonRow {
                name: entry.circuit.name().to_owned(),
                qubits: entry.circuit.num_qubits(),
                gates: (staged.num_2q_gates(), staged.num_1q_gates()),
                paper_gates: (entry.paper_2q, entry.paper_1q),
                results: compare_all(&staged),
            }
        })
        .collect()
}

/// Geometric mean over positive values (0 if any ≤ 0; panics when empty).
pub fn geomean(values: &[f64]) -> f64 {
    zac_fidelity::geometric_mean(values)
}

/// Geometric mean of one metric across rows for one compiler (skipping
/// circuits the compiler could not handle).
pub fn compiler_geomean(
    rows: &[ComparisonRow],
    compiler: &str,
    f: impl Fn(&RunResult) -> f64,
) -> f64 {
    let vals: Vec<f64> = rows.iter().filter_map(|r| r.result(compiler).map(&f)).collect();
    if vals.is_empty() {
        0.0
    } else {
        geomean(&vals)
    }
}

/// Prints a header line for a bench report.
pub fn print_header(title: &str, paper_claim: &str) {
    println!("\n================================================================");
    println!("{title}");
    println!("paper: {paper_claim}");
    println!("================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compare_all_covers_six_compilers_on_small_circuit() {
        let staged = preprocess(&bench_circuits::ghz(10));
        let results = compare_all(&staged);
        assert_eq!(results.len(), 6);
        for r in &results {
            assert!(COMPILERS.contains(&r.compiler));
            assert!((0.0..=1.0).contains(&r.fidelity()), "{}: {}", r.compiler, r.fidelity());
        }
    }

    #[test]
    fn zac_beats_monolithic_on_ghz() {
        let staged = preprocess(&bench_circuits::ghz(23));
        let results = compare_all(&staged);
        let get =
            |label: &str| results.iter().find(|r| r.compiler == label).unwrap().fidelity();
        assert!(get("Zoned-ZAC") > get("Monolithic-Enola"));
        assert!(get("Zoned-ZAC") > get("Monolithic-Atomique"));
    }
}
