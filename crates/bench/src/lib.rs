//! Shared harness for regenerating the paper's tables and figures.
//!
//! Every `benches/*.rs` target (plain binaries, `harness = false`) uses this
//! crate to run the compilers over the paper's benchmark suite and print the
//! same rows/series the paper reports.
//!
//! Since the [`zac_core::Compiler`]-trait refactor the harness is fully
//! generic: [`default_compilers`] assembles the paper's six-compiler lineup
//! (Fig. 8 legend order), [`run_compilers`] drives any compiler slice over
//! one circuit, and [`BatchRunner`] fans a suite × compiler matrix out
//! across cores with rayon. Results are independent per (circuit, compiler)
//! cell and the parallel scheduler preserves input order, so parallel runs
//! are identical to serial runs (asserted in this crate's tests).

pub mod corpus;

use rayon::prelude::*;
use zac_arch::Architecture;
use zac_baselines::{Atomique, Enola, Nalac, Sc};
use zac_cache::{CacheKey, CompileCache};
use zac_circuit::{bench_circuits, preprocess, StagedCircuit};
use zac_core::{CompileError, CompileOutput, Compiler, GateCounts, Zac, ZacConfig};
use zac_fidelity::FidelityReport;
use zac_telemetry::MetricsSnapshot;

/// One compiler's results on one circuit.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Compiler label as used in the paper's legends.
    pub compiler: String,
    /// Fidelity report.
    pub report: FidelityReport,
    /// Named gate/error counters.
    pub counts: GateCounts,
    /// Compile wall time in seconds. For cache hits this is the *original*
    /// compile time recorded when the entry was produced — lookup times
    /// never pollute figure timing series (regression-tested below).
    pub compile_secs: f64,
    /// Per-phase split of `compile_secs` as `(place, schedule)` seconds,
    /// for pipeline compilers that report one (ZAC). Cache hits carry the
    /// original split.
    pub phase_secs: Option<(f64, f64)>,
    /// Whether the result was served from a [`CompileCache`] rather than
    /// freshly compiled.
    pub from_cache: bool,
}

impl RunResult {
    fn from_output(compiler: &dyn Compiler, out: CompileOutput) -> Self {
        Self {
            compiler: compiler.name().to_owned(),
            report: out.report,
            counts: out.counts,
            compile_secs: out.compile_time.as_secs_f64(),
            phase_secs: out.phases.map(|p| (p.place.as_secs_f64(), p.schedule.as_secs_f64())),
            from_cache: out.from_cache,
        }
    }

    /// Total fidelity.
    pub fn fidelity(&self) -> f64 {
        self.report.total()
    }
}

/// A non-capacity compiler failure observed in a sweep cell: a compiler
/// bug, not a circuit that merely does not fit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellFailure {
    /// Compiler label.
    pub compiler: String,
    /// The backend's error message.
    pub reason: String,
}

/// Outcome of running one compiler on one circuit — the typed replacement
/// for the old "`Option<RunResult>` plus a stderr warning" shape: callers
/// and tests can now observe *why* a cell is blank instead of scraping
/// stderr.
///
/// Since the serving refactor the three-way shape itself lives in
/// [`zac_core::admission::Outcome`] (the serving layer uses it with
/// `T = CompileOutput`); this alias keeps the harness vocabulary — and all
/// existing `RunOutcome::...` construction and matching — unchanged.
pub type RunOutcome = Outcome<RunResult>;

pub use zac_core::admission::{AdmissionLimits, Outcome, RejectReason};

/// All compilers' results on one circuit.
#[derive(Debug, Clone)]
pub struct ComparisonRow {
    /// Circuit name (paper naming, e.g. `bv_n14`).
    pub name: String,
    /// Qubit count.
    pub qubits: usize,
    /// (2Q, 1Q) gate counts after our preprocessing.
    pub gates: (usize, usize),
    /// (2Q, 1Q) gate counts the paper reports.
    pub paper_gates: (usize, usize),
    /// Results keyed by compiler label.
    pub results: Vec<RunResult>,
    /// Non-capacity failures observed in this row ([`RunOutcome::Failed`]
    /// cells). Empty in a healthy sweep; the cells stay blank in figures
    /// either way.
    pub failures: Vec<CellFailure>,
}

impl ComparisonRow {
    /// Looks up a compiler's result by label.
    pub fn result(&self, compiler: &str) -> Option<&RunResult> {
        self.results.iter().find(|r| r.compiler == compiler)
    }
}

/// Compiler labels in the paper's Fig. 8 legend order.
pub const COMPILERS: [&str; 6] =
    ["SC-Heron", "SC-Grid", "Monolithic-Atomique", "Monolithic-Enola", "Zoned-NALAC", "Zoned-ZAC"];

/// The harness's ZAC configuration (SA budget matching the paper's 1000
/// iterations).
pub fn zac_config() -> ZacConfig {
    ZacConfig::full()
}

/// The paper's six-compiler lineup (Fig. 8 legend order): two SC machines,
/// the two monolithic baselines, NALAC, and ZAC on the reference zoned
/// architecture. All behind the unified [`Compiler`] trait.
pub fn default_compilers() -> Vec<Box<dyn Compiler>> {
    vec![
        Box::new(Sc::heron()),
        Box::new(Sc::grid()),
        Box::new(Atomique::default()),
        Box::new(Enola::default()),
        Box::new(Nalac::default()),
        Box::new(Zac::with_config(Architecture::reference(), zac_config())),
    ]
}

/// Runs one compiler on one circuit, reporting a typed [`RunOutcome`].
pub fn run_cell(compiler: &dyn Compiler, staged: &StagedCircuit) -> RunOutcome {
    run_cell_with(compiler, staged, None)
}

/// [`run_cell`] with an optional shared [`CompileCache`]: the cache is
/// consulted first (hits carry their original compile time and
/// `from_cache == true`), and successful fresh compilations populate it.
pub fn run_cell_with(
    compiler: &dyn Compiler,
    staged: &StagedCircuit,
    cache: Option<&CompileCache>,
) -> RunOutcome {
    if let Some(cache) = cache {
        let key = CacheKey::compute(compiler, staged);
        if let Some(out) = cache.get(key) {
            return RunOutcome::Ok(RunResult::from_output(compiler, out));
        }
        return match compiler.compile(staged) {
            Ok(out) => {
                cache.put(key, &out);
                RunOutcome::Ok(RunResult::from_output(compiler, out))
            }
            Err(e) => outcome_from_error(e),
        };
    }
    match compiler.compile(staged) {
        Ok(out) => RunOutcome::Ok(RunResult::from_output(compiler, out)),
        Err(e) => outcome_from_error(e),
    }
}

fn outcome_from_error(e: CompileError) -> RunOutcome {
    match e {
        CompileError::CircuitTooLarge { needed, available } => {
            RunOutcome::TooLarge { needed, available }
        }
        CompileError::Failed(reason) => RunOutcome::Failed(reason),
        CompileError::Cancelled => RunOutcome::Failed("compilation cancelled".into()),
    }
}

/// Runs every compiler in `compilers` on one staged circuit with
/// blank-cell semantics: oversized cells are skipped silently, and
/// non-capacity failures — compiler bugs, not capacity limits — are
/// additionally surfaced on stderr at this harness boundary so aggregate
/// statistics never shrink unnoticed. Use [`run_cell`] directly to observe
/// failures as values.
pub fn run_compilers(compilers: &[Box<dyn Compiler>], staged: &StagedCircuit) -> Vec<RunResult> {
    compilers
        .iter()
        .filter_map(|compiler| match run_cell(&**compiler, staged) {
            RunOutcome::Failed(reason) => {
                eprintln!("warning: {} failed on {}: {reason}", compiler.name(), staged.name);
                None
            }
            outcome => outcome.into_result(),
        })
        .collect()
}

/// Runs the default six-compiler lineup on one staged circuit.
pub fn compare_all(staged: &StagedCircuit) -> Vec<RunResult> {
    run_compilers(&default_compilers(), staged)
}

/// Execution strategy for a suite × compiler sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BatchMode {
    /// Fan the (circuit, compiler) cells out across cores with rayon.
    #[default]
    Parallel,
    /// One cell at a time, in order (reference semantics).
    Serial,
}

/// Drives a benchmark suite × compiler matrix, optionally in parallel and
/// optionally through a shared compilation cache.
///
/// Each (circuit, compiler) cell is an independent compilation (every
/// compiler in this workspace is deterministic given its config, including
/// ZAC's seeded SA), so the parallel schedule produces results identical to
/// the serial one; only wall-clock timing differs. When the *timing* is the
/// measurement (Fig. 12), use [`BatchRunner::serial`]: per-cell
/// `compile_secs` under the parallel mode includes contention from
/// co-running cells. (Cache hits are immune to this: they carry the compile
/// time recorded when the entry was produced.)
///
/// # Example
///
/// ```
/// use zac_bench::{default_compilers, BatchRunner};
/// use zac_cache::CompileCache;
/// use zac_circuit::{bench_circuits, preprocess};
///
/// let suite = vec![preprocess(&bench_circuits::ghz(8))];
/// let cache = CompileCache::in_memory(256);
/// let runner = BatchRunner::parallel().with_cache(cache.clone());
/// let cold = runner.run(&default_compilers(), &suite);
/// let warm = runner.run(&default_compilers(), &suite); // all cache hits
/// assert_eq!(cold[0].results.len(), 6);
/// assert!(warm[0].results.iter().all(|r| r.from_cache));
/// assert_eq!(cache.stats().hits, 6);
/// ```
#[derive(Debug, Clone, Default)]
pub struct BatchRunner {
    mode: BatchMode,
    cache: Option<CompileCache>,
}

impl BatchRunner {
    /// A runner that sweeps in parallel (the default).
    pub fn parallel() -> Self {
        Self { mode: BatchMode::Parallel, cache: None }
    }

    /// A runner that sweeps serially (reference path for determinism
    /// checks).
    pub fn serial() -> Self {
        Self { mode: BatchMode::Serial, cache: None }
    }

    /// Routes every cell through `cache`. Clones of one [`CompileCache`]
    /// share storage, so suite × compiler sweeps across runners — repeated
    /// figure regenerations, fig14-style architecture matrices — reuse each
    /// other's compilations.
    pub fn with_cache(mut self, cache: CompileCache) -> Self {
        self.cache = Some(cache);
        self
    }

    /// The runner's mode.
    pub fn mode(&self) -> BatchMode {
        self.mode
    }

    /// The attached cache, if any.
    pub fn cache(&self) -> Option<&CompileCache> {
        self.cache.as_ref()
    }

    /// Runs every compiler on every circuit, returning one row per circuit
    /// (suite order) with results in compiler order. Oversized cells are
    /// left blank; non-capacity failures are recorded on
    /// [`ComparisonRow::failures`].
    pub fn run(
        &self,
        compilers: &[Box<dyn Compiler>],
        suite: &[StagedCircuit],
    ) -> Vec<ComparisonRow> {
        // Flatten to (circuit, compiler) cells so rayon balances the load:
        // a slow cell (ZAC on ising_n98) overlaps many fast ones.
        let cells: Vec<(usize, usize)> =
            (0..suite.len()).flat_map(|ci| (0..compilers.len()).map(move |ki| (ci, ki))).collect();
        let compile_cell = |&(ci, ki): &(usize, usize)| {
            run_cell_with(&*compilers[ki], &suite[ci], self.cache.as_ref())
        };
        let outputs: Vec<RunOutcome> = match self.mode {
            BatchMode::Parallel => cells.par_iter().map(compile_cell).collect(),
            BatchMode::Serial => cells.iter().map(compile_cell).collect(),
        };

        let mut rows: Vec<ComparisonRow> = suite
            .iter()
            .map(|staged| ComparisonRow {
                name: staged.name.clone(),
                qubits: staged.num_qubits,
                gates: (staged.num_2q_gates(), staged.num_1q_gates()),
                paper_gates: (0, 0),
                results: Vec::new(),
                failures: Vec::new(),
            })
            .collect();
        for ((ci, ki), outcome) in cells.into_iter().zip(outputs) {
            match outcome {
                RunOutcome::Ok(r) => rows[ci].results.push(r),
                RunOutcome::TooLarge { .. } => {}
                RunOutcome::Failed(reason) => {
                    // Recorded for callers *and* warned here, so unattended
                    // figure regenerations never shrink their aggregates
                    // silently.
                    eprintln!(
                        "warning: {} failed on {}: {reason}",
                        compilers[ki].name(),
                        rows[ci].name
                    );
                    rows[ci]
                        .failures
                        .push(CellFailure { compiler: compilers[ki].name().to_owned(), reason });
                }
            }
        }
        rows
    }

    /// [`run`](BatchRunner::run) with per-circuit telemetry attribution:
    /// sweeps circuit by circuit (cells within a circuit still follow the
    /// runner's [`BatchMode`]) and captures the process-global metrics
    /// registry delta across each circuit's cells.
    ///
    /// Rows are identical to [`run`](BatchRunner::run) — telemetry only
    /// observes. Attribution relies on the registry deltas, so enable
    /// recording first ([`zac_telemetry::set_enabled`] or `ZAC_TELEMETRY=1`)
    /// and keep other compilation work off the process while sweeping;
    /// with recording disabled every delta is zero.
    pub fn run_with_metrics(
        &self,
        compilers: &[Box<dyn Compiler>],
        suite: &[StagedCircuit],
    ) -> (Vec<ComparisonRow>, Vec<CircuitMetrics>) {
        let mut rows = Vec::with_capacity(suite.len());
        let mut metrics = Vec::with_capacity(suite.len());
        for staged in suite {
            let before = MetricsSnapshot::capture();
            rows.extend(self.run(compilers, std::slice::from_ref(staged)));
            let after = MetricsSnapshot::capture();
            metrics.push(CircuitMetrics {
                circuit: staged.name.clone(),
                metrics: after.delta_since(&before),
            });
        }
        (rows, metrics)
    }
}

/// The telemetry delta attributed to one circuit's sweep cells by
/// [`BatchRunner::run_with_metrics`].
#[derive(Debug, Clone)]
pub struct CircuitMetrics {
    /// Circuit name (paper naming, e.g. `bv_n14`).
    pub circuit: String,
    /// Counter/histogram increases recorded while this circuit's cells ran.
    pub metrics: MetricsSnapshot,
}

/// The paper's 17-circuit evaluation suite, preprocessed — the default
/// input for suite × compiler sweeps.
pub fn default_suite() -> Vec<StagedCircuit> {
    bench_circuits::paper_suite().iter().map(|entry| preprocess(&entry.circuit)).collect()
}

/// Runs the full Fig. 8 comparison over the paper's 17-circuit suite,
/// fanning the suite × compiler matrix out across cores.
pub fn run_architecture_comparison() -> Vec<ComparisonRow> {
    let entries = bench_circuits::paper_suite();
    let suite: Vec<StagedCircuit> =
        entries.iter().map(|entry| preprocess(&entry.circuit)).collect();
    let mut rows = BatchRunner::parallel().run(&default_compilers(), &suite);
    for (row, entry) in rows.iter_mut().zip(&entries) {
        row.paper_gates = (entry.paper_2q, entry.paper_1q);
    }
    rows
}

/// Geometric mean over positive values (0 if any ≤ 0). The empty slice
/// yields 1.0 — the empty product — so corpus sweeps with zero successful
/// rows aggregate cleanly instead of propagating NaN.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 1.0;
    }
    zac_fidelity::geometric_mean(values)
}

/// Geometric mean of one metric across rows for one compiler (skipping
/// circuits the compiler could not handle).
pub fn compiler_geomean(
    rows: &[ComparisonRow],
    compiler: &str,
    f: impl Fn(&RunResult) -> f64,
) -> f64 {
    let vals: Vec<f64> = rows.iter().filter_map(|r| r.result(compiler).map(&f)).collect();
    if vals.is_empty() {
        0.0
    } else {
        geomean(&vals)
    }
}

/// Prints a header line for a bench report.
pub fn print_header(title: &str, paper_claim: &str) {
    println!("\n================================================================");
    println!("{title}");
    println!("paper: {paper_claim}");
    println!("================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Regression: corpus sweeps can legitimately produce zero successful
    /// rows, and their aggregate must be the empty product, not NaN or a
    /// panic.
    #[test]
    fn geomean_of_empty_slice_is_identity() {
        assert_eq!(geomean(&[]), 1.0);
        assert!((geomean(&[4.0, 1.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[0.5, 0.0]), 0.0);
    }

    #[test]
    fn compare_all_covers_six_compilers_on_small_circuit() {
        let staged = preprocess(&bench_circuits::ghz(10));
        let results = compare_all(&staged);
        assert_eq!(results.len(), 6);
        for r in &results {
            assert!(COMPILERS.contains(&r.compiler.as_str()));
            assert!((0.0..=1.0).contains(&r.fidelity()), "{}: {}", r.compiler, r.fidelity());
        }
    }

    #[test]
    fn default_lineup_matches_legend_order() {
        let names: Vec<String> = default_compilers().iter().map(|c| c.name().to_owned()).collect();
        assert_eq!(names, COMPILERS);
    }

    #[test]
    fn zac_beats_monolithic_on_ghz() {
        let staged = preprocess(&bench_circuits::ghz(23));
        let results = compare_all(&staged);
        let get = |label: &str| results.iter().find(|r| r.compiler == label).unwrap().fidelity();
        assert!(get("Zoned-ZAC") > get("Monolithic-Enola"));
        assert!(get("Zoned-ZAC") > get("Monolithic-Atomique"));
    }

    #[test]
    fn counts_are_named_and_consistent() {
        let staged = preprocess(&bench_circuits::ghz(10));
        let results = compare_all(&staged);
        let zac = results.iter().find(|r| r.compiler == "Zoned-ZAC").unwrap();
        assert_eq!(zac.counts.g2, 9);
        assert_eq!(zac.counts.n_exc, 0);
        let enola = results.iter().find(|r| r.compiler == "Monolithic-Enola").unwrap();
        assert_eq!(enola.counts.n_exc, 9 * 8);
    }

    /// The tentpole guarantee: a rayon-parallel sweep is indistinguishable
    /// from the serial reference, bit-for-bit, modulo wall-clock timing.
    #[test]
    fn batch_runner_parallel_matches_serial() {
        let suite: Vec<StagedCircuit> = [
            bench_circuits::ghz(16),
            bench_circuits::bv(14, 13),
            bench_circuits::ising(20),
            bench_circuits::qft(8),
        ]
        .iter()
        .map(preprocess)
        .collect();
        let par = BatchRunner::parallel().run(&default_compilers(), &suite);
        let ser = BatchRunner::serial().run(&default_compilers(), &suite);
        assert_eq!(par.len(), ser.len());
        for (p, s) in par.iter().zip(&ser) {
            assert_eq!(p.name, s.name);
            assert_eq!(p.qubits, s.qubits);
            assert_eq!(p.gates, s.gates);
            assert_eq!(p.results.len(), s.results.len(), "{}", p.name);
            for (pr, sr) in p.results.iter().zip(&s.results) {
                assert_eq!(pr.compiler, sr.compiler);
                // Bit-exact equality of every f64 metric (timing excluded:
                // wall clocks differ between any two runs).
                assert_eq!(pr.report, sr.report, "{} / {}", p.name, pr.compiler);
                assert_eq!(pr.counts, sr.counts, "{} / {}", p.name, pr.compiler);
            }
        }
    }

    #[test]
    fn batch_runner_skips_oversized_cells() {
        // 150 qubits exceed both SC machines and both 10×10 monolithic
        // arrays (Enola: 100 sites; Atomique: 200 slots still fits).
        let suite = vec![preprocess(&bench_circuits::ghz(150))];
        let rows = BatchRunner::parallel().run(&default_compilers(), &suite);
        let names: Vec<&str> = rows[0].results.iter().map(|r| r.compiler.as_str()).collect();
        assert!(!names.contains(&"SC-Heron"));
        assert!(!names.contains(&"SC-Grid"));
        assert!(!names.contains(&"Monolithic-Enola"));
        assert!(names.contains(&"Zoned-NALAC"));
        assert!(names.contains(&"Zoned-ZAC"));
        // Capacity skips are not failures.
        assert!(rows[0].failures.is_empty());
    }

    /// A compiler that always fails with a non-capacity error.
    struct Broken;

    impl Compiler for Broken {
        fn name(&self) -> &str {
            "Broken"
        }

        fn compile(&self, _: &StagedCircuit) -> Result<zac_core::CompileOutput, CompileError> {
            Err(CompileError::Failed("synthetic failure".into()))
        }
    }

    #[test]
    fn run_cell_reports_typed_outcomes() {
        let staged = preprocess(&bench_circuits::ghz(10));
        match run_cell(&Broken, &staged) {
            RunOutcome::Failed(reason) => assert_eq!(reason, "synthetic failure"),
            other => panic!("expected Failed, got {other:?}"),
        }
        let big = preprocess(&bench_circuits::ghz(150));
        match run_cell(&Sc::heron(), &big) {
            RunOutcome::TooLarge { needed, available } => {
                assert_eq!(needed, 150);
                assert!(available < 150);
            }
            other => panic!("expected TooLarge, got {other:?}"),
        }
        assert!(run_cell(&Sc::heron(), &staged).into_result().is_some());
    }

    #[test]
    fn batch_runner_records_failures_on_rows() {
        let staged = preprocess(&bench_circuits::ghz(8));
        let compilers: Vec<Box<dyn Compiler>> = vec![Box::new(Broken), Box::new(Sc::heron())];
        let rows = BatchRunner::serial().run(&compilers, &[staged]);
        assert_eq!(rows[0].results.len(), 1);
        assert_eq!(
            rows[0].failures,
            vec![CellFailure { compiler: "Broken".into(), reason: "synthetic failure".into() }]
        );
    }

    fn small_suite() -> Vec<StagedCircuit> {
        [
            bench_circuits::ghz(16),
            bench_circuits::bv(14, 13),
            bench_circuits::ising(20),
            bench_circuits::qft(8),
        ]
        .iter()
        .map(preprocess)
        .collect()
    }

    /// The caching guarantee: a warm sweep performs **zero** `compile()`
    /// calls and returns results bit-identical to the cold sweep —
    /// including `compile_secs`, which must carry the original compile
    /// time, never the cache-lookup time.
    #[test]
    fn warm_sweep_compiles_nothing_and_matches_cold_sweep() {
        let suite = small_suite();
        let compilers = default_compilers();
        let cache = zac_cache::CompileCache::in_memory(1024);
        let runner = BatchRunner::parallel().with_cache(cache.clone());

        let cold = runner.run(&compilers, &suite);
        let warm = runner.run(&compilers, &suite);

        // Every cell of the warm sweep was a cache hit…
        let stats = cache.stats();
        let cells = (suite.len() * compilers.len()) as u64;
        assert_eq!(stats.hits, cells, "warm sweep must hit on every cell: {stats:?}");
        assert!(warm.iter().flat_map(|r| &r.results).all(|r| r.from_cache));
        assert!(cold.iter().flat_map(|r| &r.results).all(|r| !r.from_cache));

        // …and bit-identical to the cold sweep, timing included.
        assert_eq!(cold.len(), warm.len());
        for (c, w) in cold.iter().zip(&warm) {
            assert_eq!(c.name, w.name);
            assert_eq!(c.results.len(), w.results.len(), "{}", c.name);
            for (cr, wr) in c.results.iter().zip(&w.results) {
                assert_eq!(cr.compiler, wr.compiler);
                assert_eq!(cr.report, wr.report, "{} / {}", c.name, cr.compiler);
                assert_eq!(cr.counts, wr.counts, "{} / {}", c.name, cr.compiler);
                assert_eq!(
                    cr.compile_secs.to_bits(),
                    wr.compile_secs.to_bits(),
                    "{} / {}: cached timing must be the original compile time",
                    c.name,
                    cr.compiler
                );
            }
        }
    }

    /// The zero-compile assertion, counter-based: after a cold sweep primed
    /// the cache, a second sweep must not invoke any compiler at all.
    #[test]
    fn warm_sweep_zero_compile_calls_counter_asserted() {
        let suite = small_suite();
        let counters: Vec<std::sync::Arc<std::sync::atomic::AtomicUsize>> =
            (0..6).map(|_| std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0))).collect();

        struct SharedCounting {
            inner: Box<dyn Compiler>,
            calls: std::sync::Arc<std::sync::atomic::AtomicUsize>,
        }

        impl Compiler for SharedCounting {
            fn name(&self) -> &str {
                self.inner.name()
            }

            fn config_tokens(&self, fp: &mut zac_core::Fingerprint) {
                self.inner.config_tokens(fp);
            }

            fn compile(
                &self,
                staged: &StagedCircuit,
            ) -> Result<zac_core::CompileOutput, CompileError> {
                self.calls.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                self.inner.compile(staged)
            }
        }

        let compilers: Vec<Box<dyn Compiler>> = default_compilers()
            .into_iter()
            .zip(&counters)
            .map(|(inner, calls)| {
                Box::new(SharedCounting { inner, calls: calls.clone() }) as Box<dyn Compiler>
            })
            .collect();

        let cache = zac_cache::CompileCache::in_memory(1024);
        let runner = BatchRunner::parallel().with_cache(cache.clone());
        runner.run(&compilers, &suite);
        let after_cold: usize =
            counters.iter().map(|c| c.load(std::sync::atomic::Ordering::Relaxed)).sum();
        assert_eq!(after_cold, suite.len() * compilers.len(), "cold sweep compiles every cell");

        runner.run(&compilers, &suite);
        let after_warm: usize =
            counters.iter().map(|c| c.load(std::sync::atomic::Ordering::Relaxed)).sum();
        assert_eq!(after_warm, after_cold, "warm sweep performs zero compile() calls");
    }

    /// `run_with_metrics` returns the same rows as `run` (telemetry only
    /// observes) and, with the recorder on, attributes nonzero core, place,
    /// and schedule counters to every circuit of the sweep.
    #[test]
    fn run_with_metrics_attributes_counters_per_circuit() {
        let suite = small_suite();
        let compilers = default_compilers();
        let plain = BatchRunner::serial().run(&compilers, &suite);

        zac_telemetry::set_enabled(true);
        let (rows, metrics) = BatchRunner::serial().run_with_metrics(&compilers, &suite);
        zac_telemetry::set_enabled(false);

        assert_eq!(rows.len(), plain.len());
        for (r, p) in rows.iter().zip(&plain) {
            assert_eq!(r.name, p.name);
            assert_eq!(r.results.len(), p.results.len(), "{}", r.name);
            for (rr, pr) in r.results.iter().zip(&p.results) {
                assert_eq!(rr.report, pr.report, "{} / {}", r.name, rr.compiler);
                assert_eq!(rr.counts, pr.counts, "{} / {}", r.name, rr.compiler);
            }
        }

        assert_eq!(metrics.len(), suite.len());
        for m in &metrics {
            // ≥, not ==: other tests in this binary may compile concurrently
            // while the recorder is on, inflating a delta.
            assert!(
                m.metrics.counter("core.pipeline.compiles") >= 1,
                "{}: ZAC compiles through the instrumented pipeline",
                m.circuit
            );
            for prefix in ["place.", "schedule."] {
                assert!(
                    m.metrics.counter_sum_with_prefix(prefix) > 0,
                    "{}: no {prefix} activity recorded",
                    m.circuit
                );
            }
        }
    }

    /// The cache composes across differently-shaped sweeps: a serial rerun
    /// over a subset of the suite reuses the parallel sweep's entries.
    #[test]
    fn cache_is_shared_across_runners_and_modes() {
        let suite = small_suite();
        let cache = zac_cache::CompileCache::in_memory(1024);
        let compilers = default_compilers();
        BatchRunner::parallel().with_cache(cache.clone()).run(&compilers, &suite);
        let rows = BatchRunner::serial().with_cache(cache.clone()).run(&compilers, &suite[..2]);
        assert!(rows.iter().flat_map(|r| &r.results).all(|r| r.from_cache));
        assert_eq!(cache.stats().misses, (suite.len() * compilers.len()) as u64);
    }
}
