//! Fig. 11: ablation of ZAC's placement techniques.
//!
//! Paper claims: dynPlace gives ~5% over Vanilla; +reuse gives ~46% over
//! dynPlace; +SA adds ~0.4% on average (up to ~4% on qft_n18, since most
//! circuits fit one storage row).

use zac_arch::Architecture;
use zac_bench::{geomean, print_header};
use zac_circuit::{bench_circuits, preprocess};
use zac_core::{Zac, ZacConfig};

const ARMS: [&str; 4] = ["Vanilla", "dynPlace", "dynPlace+reuse", "SA+dynPlace+reuse"];

fn config_for(arm: &str) -> ZacConfig {
    match arm {
        "Vanilla" => ZacConfig::vanilla(),
        "dynPlace" => ZacConfig::dyn_place(),
        "dynPlace+reuse" => ZacConfig::dyn_place_reuse(),
        _ => ZacConfig::full(),
    }
}

fn main() {
    print_header(
        "Fig. 11 — Technique comparison (ZAC ablation)",
        "dynPlace +5% over Vanilla; +reuse +46% over dynPlace; +SA +0.4% avg",
    );

    print!("{:<22}", "circuit");
    for arm in ARMS {
        print!("{arm:>22}");
    }
    println!();

    let mut per_arm: Vec<Vec<f64>> = vec![Vec::new(); ARMS.len()];
    for entry in bench_circuits::paper_suite() {
        let staged = preprocess(&entry.circuit);
        print!("{:<22}", entry.circuit.name());
        for (i, arm) in ARMS.iter().enumerate() {
            let zac = Zac::with_config(Architecture::reference(), config_for(arm));
            match zac.compile_staged(&staged) {
                Ok(out) => {
                    per_arm[i].push(out.total_fidelity());
                    print!("{:>22.4e}", out.total_fidelity());
                }
                Err(_) => print!("{:>22}", "-"),
            }
        }
        println!();
    }

    print!("{:<22}", "GMean");
    let gms: Vec<f64> = per_arm.iter().map(|v| geomean(v)).collect();
    for g in &gms {
        print!("{g:>22.4e}");
    }
    println!();

    println!("\nincremental gains (paper in parentheses):");
    println!("  dynPlace / Vanilla:            {:.1}% (5%)", (gms[1] / gms[0] - 1.0) * 100.0);
    println!("  +reuse / dynPlace:             {:.1}% (46%)", (gms[2] / gms[1] - 1.0) * 100.0);
    println!("  +SA / dynPlace+reuse:          {:.2}% (0.4%)", (gms[3] / gms[2] - 1.0) * 100.0);
}
