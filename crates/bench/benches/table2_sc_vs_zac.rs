//! Table II: fidelity breakdown and average circuit duration, SC vs ZAC.
//!
//! Paper reference row (SC grid): 2Q 0.8451, 1Q 0.9008, decoherence 0.3102,
//! total 0.2362, avg duration 9.1 µs. ZAC row: 2Q 0.6977, 1Q 0.9721,
//! transfer 0.7814, decoherence 0.7003, total 0.3689, avg 13.8 ms.

use zac_bench::{compiler_geomean, print_header, run_architecture_comparison};

fn main() {
    print_header(
        "Table II — Fidelity breakdown & avg duration: SC grid vs ZAC",
        "SC: 0.8451/0.9008/-/0.3102 → 0.2362 @ 9.1us; \
         ZAC: 0.6977/0.9721/0.7814/0.7003 → 0.3689 @ 13.8ms",
    );
    let rows = run_architecture_comparison();

    println!(
        "{:<12}{:>10}{:>10}{:>10}{:>10}{:>10}{:>16}",
        "", "2Q", "1Q", "Tran.", "Decohe.", "Total", "Avg duration"
    );
    for (label, compiler) in [("SC", "SC-Grid"), ("ZAC", "Zoned-ZAC")] {
        let g2 = compiler_geomean(&rows, compiler, |r| r.report.two_q);
        let g1 = compiler_geomean(&rows, compiler, |r| r.report.one_q);
        let tr = compiler_geomean(&rows, compiler, |r| r.report.transfer);
        let de = compiler_geomean(&rows, compiler, |r| r.report.decoherence);
        let tot = compiler_geomean(&rows, compiler, |r| r.fidelity());
        let durs: Vec<f64> =
            rows.iter().filter_map(|r| r.result(compiler).map(|x| x.report.duration_us)).collect();
        let avg = durs.iter().sum::<f64>() / durs.len().max(1) as f64;
        let dur_str =
            if avg > 1000.0 { format!("{:.1}ms", avg / 1000.0) } else { format!("{avg:.1}us") };
        let tr_str =
            if compiler.starts_with("SC") { "N/A".to_string() } else { format!("{tr:.4}") };
        println!("{label:<12}{g2:>10.4}{g1:>10.4}{tr_str:>10}{de:>10.4}{tot:>10.4}{dur_str:>16}");
    }
}
