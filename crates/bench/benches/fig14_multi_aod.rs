//! Fig. 14: circuit fidelity with 1–4 AODs.
//!
//! Paper claims: two AODs give ~10% fidelity improvement; the third and
//! fourth add only ~2% because rearrangement parallelism saturates.
//!
//! The four AOD arms share one [`InitialPlacementCache`]: the SA initial
//! placement depends only on the zone geometry and the circuit — never on
//! the AOD count — so it is computed once per circuit instead of once per
//! arm, and the arch × circuit matrix fans out through [`BatchRunner`]
//! (outputs are bit-identical to per-arm serial recompute; see
//! `shared_placement_cache_is_bit_identical_across_aod_arms` in zac-core).

use zac_arch::Architecture;
use zac_bench::{default_suite, geomean, print_header, BatchRunner};
use zac_core::{Compiler, Labeled, Zac, ZacConfig};
use zac_place::InitialPlacementCache;

fn main() {
    print_header(
        "Fig. 14 — AOD number comparison",
        "2 AODs: +10% fidelity; 3rd and 4th AOD: +2% more",
    );

    let suite = default_suite();
    let cache = InitialPlacementCache::new();
    let labels = ["1AOD", "2AOD", "3AOD", "4AOD"];
    let arms: Vec<Box<dyn Compiler>> = (1..=4usize)
        .map(|k| {
            let arch = Architecture::reference().with_num_aods(k);
            let zac = Zac::with_config(arch, ZacConfig::full()).with_placement_cache(cache.clone());
            Box::new(Labeled::new(labels[k - 1], zac)) as Box<dyn Compiler>
        })
        .collect();

    let rows = BatchRunner::parallel().run(&arms, &suite);

    print!("{:<22}", "circuit");
    for label in labels {
        print!("{label:>18}");
    }
    println!();

    let mut per_k: Vec<Vec<f64>> = vec![Vec::new(); 4];
    for row in &rows {
        print!("{:<22}", row.name);
        for (k, label) in labels.iter().enumerate() {
            match row.result(label) {
                Some(r) => {
                    per_k[k].push(r.fidelity());
                    print!("{:>18.4e}", r.fidelity());
                }
                None => print!("{:>18}", "-"),
            }
        }
        println!();
    }

    print!("{:<22}", "GMean");
    let gms: Vec<f64> = per_k.iter().map(|v| geomean(v)).collect();
    for g in &gms {
        print!("{g:>18.4e}");
    }
    println!();
    println!(
        "\nSA initial placements computed: {} (one per circuit, shared by all {} arms)",
        cache.len(),
        labels.len()
    );
    println!("gains over 1 AOD (paper in parentheses):");
    println!("  2 AODs: {:+.1}% (+10%)", (gms[1] / gms[0] - 1.0) * 100.0);
    println!("  3 AODs: {:+.1}%", (gms[2] / gms[0] - 1.0) * 100.0);
    println!("  4 AODs: {:+.1}% (2 AOD +2%)", (gms[3] / gms[0] - 1.0) * 100.0);
}
