//! Fig. 14: circuit fidelity with 1–4 AODs.
//!
//! Paper claims: two AODs give ~10% fidelity improvement; the third and
//! fourth add only ~2% because rearrangement parallelism saturates.

use zac_arch::Architecture;
use zac_bench::{geomean, print_header};
use zac_circuit::{bench_circuits, preprocess};
use zac_core::{Zac, ZacConfig};

fn main() {
    print_header(
        "Fig. 14 — AOD number comparison",
        "2 AODs: +10% fidelity; 3rd and 4th AOD: +2% more",
    );

    print!("{:<22}", "circuit");
    for k in 1..=4 {
        print!("{:>18}", format!("{k}AOD"));
    }
    println!();

    let mut per_k: Vec<Vec<f64>> = vec![Vec::new(); 4];
    for entry in bench_circuits::paper_suite() {
        let staged = preprocess(&entry.circuit);
        print!("{:<22}", entry.circuit.name());
        for k in 1..=4usize {
            let arch = Architecture::reference().with_num_aods(k);
            let zac = Zac::with_config(arch, ZacConfig::full());
            match zac.compile_staged(&staged) {
                Ok(out) => {
                    per_k[k - 1].push(out.total_fidelity());
                    print!("{:>18.4e}", out.total_fidelity());
                }
                Err(_) => print!("{:>18}", "-"),
            }
        }
        println!();
    }

    print!("{:<22}", "GMean");
    let gms: Vec<f64> = per_k.iter().map(|v| geomean(v)).collect();
    for g in &gms {
        print!("{g:>18.4e}");
    }
    println!();
    println!("\ngains over 1 AOD (paper in parentheses):");
    println!("  2 AODs: {:+.1}% (+10%)", (gms[1] / gms[0] - 1.0) * 100.0);
    println!("  3 AODs: {:+.1}%", (gms[2] / gms[0] - 1.0) * 100.0);
    println!("  4 AODs: {:+.1}% (2 AOD +2%)", (gms[3] / gms[0] - 1.0) * 100.0);
}
