//! Sec. VII-H: effectiveness of multiple entanglement zones.
//!
//! Paper claims: ising_n98 on Arch1 (one 6×10-site zone) reaches fidelity
//! 0.041 at 23.25 ms; Arch2 (two 3×10-site zones flanking storage) improves
//! to 0.047 (+15%) at 21.63 ms (−8%), because the rear site rows get closer.

use zac_arch::Architecture;
use zac_bench::print_header;
use zac_circuit::{bench_circuits, preprocess};
use zac_core::{Zac, ZacConfig};

fn main() {
    print_header(
        "Sec. VII-H — Multiple entanglement zones (ising_n98)",
        "Arch2 (two zones): +15% fidelity, -8% duration vs Arch1",
    );
    let staged = preprocess(&bench_circuits::ising(98));

    let mut results = Vec::new();
    for (label, arch) in [
        ("Arch1 (1 zone, 6x10)", Architecture::arch1_small()),
        ("Arch2 (2 zones, 3x10 each)", Architecture::arch2_two_zones()),
    ] {
        let zac = Zac::with_config(arch, ZacConfig::full());
        let out = zac.compile_staged(&staged).expect("ising_n98 fits both layouts");
        println!(
            "{label:<30} fidelity {:.4}   duration {:.2} ms   transfers {}",
            out.total_fidelity(),
            out.summary.duration_us / 1000.0,
            out.summary.n_tran
        );
        results.push((out.total_fidelity(), out.summary.duration_us));
    }
    let (f1, d1) = results[0];
    let (f2, d2) = results[1];
    println!(
        "\nArch2 vs Arch1: fidelity {:+.1}% (paper +15%), duration {:+.1}% (paper -8%)",
        (f2 / f1 - 1.0) * 100.0,
        (d2 / d1 - 1.0) * 100.0
    );
}
