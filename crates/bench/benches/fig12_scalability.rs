//! Fig. 12: compilation time vs fidelity trade-off.
//!
//! Paper claims: ZAC reaches the highest fidelity with runtime comparable to
//! the other tools; with SA disabled it solves every instance in under one
//! second.
//!
//! This figure *measures compile time*, so every sweep here runs through
//! `BatchRunner::serial()` — per-cell wall times under the parallel runner
//! would include contention from co-running cells.

use zac_arch::Architecture;
use zac_bench::{default_compilers, geomean, print_header, BatchRunner};
use zac_circuit::{bench_circuits, preprocess, StagedCircuit};
use zac_core::{Compiler, Labeled, Zac, ZacConfig};

fn main() {
    print_header(
        "Fig. 12 — Compilation time vs fidelity (averages across the suite)",
        "ZAC-dynPlace+reuse solves every instance < 1 s with 3.6x better \
         fidelity than NALAC; full ZAC has the best fidelity overall",
    );

    let suite: Vec<StagedCircuit> =
        bench_circuits::paper_suite().iter().map(|entry| preprocess(&entry.circuit)).collect();

    // Baselines, timed without contention.
    let rows = BatchRunner::serial().run(&default_compilers(), &suite);
    println!("{:<26}{:>18}{:>18}", "compiler", "avg time (s)", "gmean fidelity");
    for compiler in zac_bench::COMPILERS {
        if compiler == "Zoned-ZAC" {
            continue; // replaced by per-variant rows below
        }
        let times: Vec<f64> =
            rows.iter().filter_map(|r| r.result(compiler).map(|x| x.compile_secs)).collect();
        let fids = zac_bench::compiler_geomean(&rows, compiler, |r| r.fidelity());
        if !times.is_empty() {
            let avg = times.iter().sum::<f64>() / times.len() as f64;
            println!("{compiler:<26}{avg:>18.4}{fids:>18.4e}");
        }
    }

    // The four ZAC ablation arms: the same compiler behind the trait,
    // relabeled per config.
    let arch = Architecture::reference();
    let variant_names =
        ["ZAC-Vanilla", "ZAC-dynPlace", "ZAC-dynPlace+reuse", "ZAC-SA+dynPlace+reuse"];
    let variants: Vec<Box<dyn Compiler>> = [
        ZacConfig::vanilla(),
        ZacConfig::dyn_place(),
        ZacConfig::dyn_place_reuse(),
        ZacConfig::full(),
    ]
    .into_iter()
    .zip(variant_names)
    .map(|(cfg, label)| {
        Box::new(Labeled::new(label, Zac::with_config(arch.clone(), cfg))) as Box<dyn Compiler>
    })
    .collect();
    let variant_rows = BatchRunner::serial().run(&variants, &suite);

    for variant in variant_names {
        let times: Vec<f64> =
            variant_rows.iter().filter_map(|r| r.result(variant).map(|x| x.compile_secs)).collect();
        let fids: Vec<f64> =
            variant_rows.iter().filter_map(|r| r.result(variant).map(|x| x.fidelity())).collect();
        let avg = times.iter().sum::<f64>() / times.len().max(1) as f64;
        println!("{variant:<26}{avg:>18.4}{:>18.4e}", geomean(&fids));
        if variant == "ZAC-dynPlace+reuse" {
            let max = times.iter().copied().fold(0.0, f64::max);
            println!(
                "    (SA disabled: max instance time {max:.3} s; paper: every instance < 1 s)"
            );
        }
    }
}
