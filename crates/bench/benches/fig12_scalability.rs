//! Fig. 12: compilation time vs fidelity trade-off.
//!
//! Paper claims: ZAC reaches the highest fidelity with runtime comparable to
//! the other tools; with SA disabled it solves every instance in under one
//! second.

use zac_arch::Architecture;
use zac_bench::{geomean, print_header, run_architecture_comparison};
use zac_circuit::{bench_circuits, preprocess};
use zac_core::{Zac, ZacConfig};

fn main() {
    print_header(
        "Fig. 12 — Compilation time vs fidelity (averages across the suite)",
        "ZAC-dynPlace+reuse solves every instance < 1 s with 3.6x better \
         fidelity than NALAC; full ZAC has the best fidelity overall",
    );

    // Baselines from the shared comparison run.
    let rows = run_architecture_comparison();
    println!("{:<26}{:>18}{:>18}", "compiler", "avg time (s)", "gmean fidelity");
    for compiler in zac_bench::COMPILERS {
        if compiler == "Zoned-ZAC" {
            continue; // replaced by per-variant rows below
        }
        let times: Vec<f64> = rows
            .iter()
            .filter_map(|r| r.result(compiler).map(|x| x.compile_secs))
            .collect();
        let fids = zac_bench::compiler_geomean(&rows, compiler, |r| r.fidelity());
        if !times.is_empty() {
            let avg = times.iter().sum::<f64>() / times.len() as f64;
            println!("{compiler:<26}{avg:>18.4}{fids:>18.4e}");
        }
    }

    // ZAC variants.
    for (label, cfg) in [
        ("ZAC-Vanilla", ZacConfig::vanilla()),
        ("ZAC-dynPlace", ZacConfig::dyn_place()),
        ("ZAC-dynPlace+reuse", ZacConfig::dyn_place_reuse()),
        ("ZAC-SA+dynPlace+reuse", ZacConfig::full()),
    ] {
        let mut times = Vec::new();
        let mut fids = Vec::new();
        for entry in bench_circuits::paper_suite() {
            let staged = preprocess(&entry.circuit);
            let zac = Zac::with_config(Architecture::reference(), cfg.clone());
            if let Ok(out) = zac.compile_staged(&staged) {
                times.push(out.compile_time.as_secs_f64());
                fids.push(out.total_fidelity());
            }
        }
        let avg = times.iter().sum::<f64>() / times.len().max(1) as f64;
        println!("{label:<26}{avg:>18.4}{:>18.4e}", geomean(&fids));
        if label == "ZAC-dynPlace+reuse" {
            let max = times.iter().copied().fold(0.0, f64::max);
            println!(
                "    (SA disabled: max instance time {max:.3} s; paper: every instance < 1 s)"
            );
        }
    }
}
