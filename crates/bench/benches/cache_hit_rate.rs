//! Cache effectiveness on the paper's evaluation sweep: the full
//! 17-circuit suite × six-compiler matrix, run cold and then warm through
//! one shared [`CompileCache`].
//!
//! Reported: cold sweep time, warm sweep time, speedup, and the warm-pass
//! hit rate. The warm pass must hit on ≥ 90% of lookups (it hits on 100%:
//! every cell of the matrix is deterministic and cached) and reproduce the
//! cold results bit-identically — both asserted, so this bench doubles as
//! an end-to-end check of the caching subsystem at full-suite scale.
//!
//! Run with `cargo bench -p zac-bench --bench cache_hit_rate`.

use std::time::Instant;
use zac_bench::{default_compilers, default_suite, print_header, BatchRunner};
use zac_cache::CompileCache;

fn main() {
    print_header(
        "Cache hit rate — suite × compiler sweep, cold vs warm",
        "(repo extension; enables O(1) figure regeneration and batch serving)",
    );

    let suite = default_suite();
    let compilers = default_compilers();
    let cache = CompileCache::in_memory(4096);
    let runner = BatchRunner::parallel().with_cache(cache.clone());

    let t0 = Instant::now();
    let cold = runner.run(&compilers, &suite);
    let cold_time = t0.elapsed();
    let cold_stats = cache.stats();

    let t1 = Instant::now();
    let warm = runner.run(&compilers, &suite);
    let warm_time = t1.elapsed();

    let stats = cache.stats();
    let cells = (suite.len() * compilers.len()) as u64;
    // The warm pass performs exactly one lookup per cell; its hits are the
    // delta over the cold pass. Dividing by `cells` (not by a lookup count
    // that would shrink with the misses) keeps the metric honest: a warm
    // pass that recompiles shows up as a hit rate below 1.
    let warm_hits = (stats.hits + stats.disk_hits) - (cold_stats.hits + cold_stats.disk_hits);
    let hit_rate = warm_hits as f64 / cells as f64;

    println!("suite: {} circuits × {} compilers = {} cells", suite.len(), compilers.len(), cells);
    println!(
        "cold sweep: {:>10.3} s ({} compilations)",
        cold_time.as_secs_f64(),
        cold_stats.misses
    );
    println!("warm sweep: {:>10.3} s ({warm_hits} cache hits)", warm_time.as_secs_f64());
    println!(
        "speedup:    {:>10.1}x    warm hit rate: {:.1}%",
        cold_time.as_secs_f64() / warm_time.as_secs_f64().max(1e-9),
        100.0 * hit_rate
    );
    println!("cache:      {} resident entries, {} evictions", stats.resident, stats.evictions);

    assert!(
        hit_rate >= 0.90,
        "warm sweep hit rate {:.3} below the 90% bar (stats: {stats:?})",
        hit_rate
    );

    // Warm results must be bit-identical to cold ones (original compile
    // times included — lookup time never leaks into timing series).
    assert_eq!(cold.len(), warm.len());
    for (c, w) in cold.iter().zip(&warm) {
        assert_eq!(c.results.len(), w.results.len(), "{}", c.name);
        for (cr, wr) in c.results.iter().zip(&w.results) {
            assert_eq!(cr.report, wr.report, "{} / {}", c.name, cr.compiler);
            assert_eq!(cr.counts, wr.counts, "{} / {}", c.name, cr.compiler);
            assert_eq!(cr.compile_secs.to_bits(), wr.compile_secs.to_bits());
            assert!(wr.from_cache && !cr.from_cache);
        }
        assert!(c.failures.is_empty(), "{}: {:?}", c.name, c.failures);
    }
    println!("\nwarm sweep bit-identical to cold sweep ✓");
}
