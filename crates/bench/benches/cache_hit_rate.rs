//! Cache effectiveness at fleet scale: the paper's 17-circuit suite plus
//! the bundled corpus (27 circuits) × the six-compiler matrix, run through
//! every tier of [`CompileCache`].
//!
//! Four measurements, each asserted:
//!
//! 1. **In-memory cold vs warm** — the warm pass must hit on ≥ 90% of
//!    lookups (it hits on 100%) and reproduce the cold results
//!    bit-identically, original compile times included.
//! 2. **Cold-open warm sweep, per-file vs segment** — both disk layouts are
//!    populated with the full matrix, then reopened cold and warmed through
//!    [`CompileCache::warm_from_manifest`]. The segment tier (one
//!    sequential read per segment, binary payloads) must beat the legacy
//!    per-file JSON layer by ≥ 3× wall clock (reported but not asserted in
//!    smoke mode, where the suite is capped).
//! 3. **Concurrent writers** — 8 threads over 2 segment stores sharing one
//!    directory (the two-service topology): a concurrent write wave, then a
//!    concurrent read wave that must hit on ≥ 90% of lookups.
//! 4. **Semantic fidelity** — every segment-warmed output must be
//!    `semantic_json`-identical to the directly compiled one, so the binary
//!    record codec cannot silently drift from the JSON envelope.
//!
//! Writes `BENCH_cache.json` (override with `ZAC_BENCH_OUT`); smoke mode
//! via `ZAC_BENCH_SMOKE=1` caps the suite and relaxes the timing assert.
//!
//! Run with `cargo bench -p zac-bench --bench cache_hit_rate`.

use serde::Value;
use std::time::Instant;
use zac_arch::Architecture;
use zac_bench::{corpus::load_corpus, default_compilers, default_suite, print_header, BatchRunner};
use zac_cache::{CacheKey, CompileCache};
use zac_circuit::StagedCircuit;
use zac_core::{Compiler, CorpusManifest, Zac, ZacConfig};

/// Format version of `BENCH_cache.json`.
const FORMAT_VERSION: u64 = 1;

/// The 17-circuit paper suite plus the bundled corpus (27 circuits); smoke
/// mode keeps one paper circuit per family so CI stays fast.
fn build_suite(smoke: bool) -> Vec<StagedCircuit> {
    let mut suite = default_suite();
    if smoke {
        let mut seen = std::collections::HashSet::new();
        suite.retain(|s| {
            let family = s.name.split("_n").next().unwrap_or(&s.name).to_owned();
            seen.insert(family)
        });
    }
    let corpus_dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/corpus");
    let corpus = load_corpus(corpus_dir);
    for f in &corpus.failures {
        eprintln!("warning: corpus file skipped: {f:?}");
    }
    suite.extend(corpus.suite());
    suite
}

/// The six-compiler paper lineup; smoke mode swaps ZAC for a reduced-SA
/// variant (same paper name, so rows stay comparable within one mode).
fn build_compilers(smoke: bool) -> Vec<Box<dyn Compiler>> {
    if !smoke {
        return default_compilers();
    }
    default_compilers()
        .into_iter()
        .map(|c| {
            if c.name() == "Zoned-ZAC" {
                let mut cfg = ZacConfig::full();
                cfg.placement.sa_iterations = 100;
                Box::new(Zac::with_config(Architecture::reference(), cfg)) as Box<dyn Compiler>
            } else {
                c
            }
        })
        .collect()
}

/// A unique scratch directory under the system temp dir.
fn scratch_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("zac-bench-cache-{}-{tag}", std::process::id()))
}

fn num(v: f64) -> Value {
    Value::Number(serde::Number::from_f64(v))
}

fn main() {
    let smoke = std::env::var("ZAC_BENCH_SMOKE").is_ok_and(|v| v != "0" && !v.is_empty());
    print_header(
        "Cache hit rate — memory, segment-log and per-file tiers",
        "(repo extension; enables O(1) figure regeneration and fleet-shared batch serving)",
    );
    if smoke {
        println!("mode: SMOKE (reduced SA iterations, capped suite)\n");
    }

    let suite = build_suite(smoke);
    let compilers = build_compilers(smoke);
    let cells = (suite.len() * compilers.len()) as u64;

    // ---- 1. In-memory cold vs warm sweep --------------------------------
    let cache = CompileCache::in_memory(4096);
    let runner = BatchRunner::parallel().with_cache(cache.clone());

    let t0 = Instant::now();
    let cold = runner.run(&compilers, &suite);
    let cold_time = t0.elapsed();
    let cold_stats = cache.stats();

    let t1 = Instant::now();
    let warm = runner.run(&compilers, &suite);
    let warm_time = t1.elapsed();

    let stats = cache.stats();
    // The warm pass performs exactly one lookup per cell; its hits are the
    // delta over the cold pass. Dividing by `cells` (not by a lookup count
    // that would shrink with the misses) keeps the metric honest: a warm
    // pass that recompiles shows up as a hit rate below 1.
    let warm_hits = (stats.hits + stats.disk_hits) - (cold_stats.hits + cold_stats.disk_hits);
    let mem_hit_rate = warm_hits as f64 / cells as f64;

    println!("suite: {} circuits × {} compilers = {} cells", suite.len(), compilers.len(), cells);
    println!(
        "cold sweep: {:>10.3} s ({} compilations)",
        cold_time.as_secs_f64(),
        cold_stats.misses
    );
    println!("warm sweep: {:>10.3} s ({warm_hits} memory hits)", warm_time.as_secs_f64());
    let mem_speedup = cold_time.as_secs_f64() / warm_time.as_secs_f64().max(1e-9);
    println!("speedup:    {mem_speedup:>10.1}x    warm hit rate: {:.1}%", 100.0 * mem_hit_rate);

    assert!(
        mem_hit_rate >= 0.90,
        "warm sweep hit rate {mem_hit_rate:.3} below the 90% bar (stats: {stats:?})"
    );
    assert_eq!(cold.len(), warm.len());
    for (c, w) in cold.iter().zip(&warm) {
        assert_eq!(c.results.len(), w.results.len(), "{}", c.name);
        for (cr, wr) in c.results.iter().zip(&w.results) {
            assert_eq!(cr.report, wr.report, "{} / {}", c.name, cr.compiler);
            assert_eq!(cr.counts, wr.counts, "{} / {}", c.name, cr.compiler);
            assert_eq!(cr.compile_secs.to_bits(), wr.compile_secs.to_bits());
            assert!(wr.from_cache && !cr.from_cache);
        }
        assert!(c.failures.is_empty(), "{}: {:?}", c.name, c.failures);
    }
    println!("warm sweep bit-identical to cold sweep ✓");

    // ---- 2. Cold-open warm sweep: per-file JSON vs segment log ----------
    // Populate both disk layouts with the matrix (outputs come from the
    // in-memory cache — no recompilation), plus the manifest that names it.
    let keys: Vec<(CacheKey, String)> = compilers
        .iter()
        .flat_map(|c| {
            suite.iter().map(move |s| {
                (CacheKey::compute(c.as_ref(), s), format!("{} @ {}", s.name, c.name()))
            })
        })
        .collect();
    let mut manifest = CorpusManifest::new();
    for (key, name) in &keys {
        manifest.push(name.clone(), key.circuit, key.compiler);
    }

    let perfile_dir = scratch_dir("perfile");
    let segment_dir = scratch_dir("segment");
    for dir in [&perfile_dir, &segment_dir] {
        std::fs::remove_dir_all(dir).ok();
    }
    let outputs: Vec<_> = keys
        .iter()
        .map(|(key, name)| (*key, cache.get(*key).unwrap_or_else(|| panic!("missing cell {name}"))))
        .collect();
    {
        let perfile = CompileCache::with_disk(4096, &perfile_dir).expect("per-file dir");
        let seg = CompileCache::with_segment_store(4096, &segment_dir).expect("segment dir");
        for (key, out) in &outputs {
            perfile.put(*key, out);
            seg.put(*key, out);
        }
        let s = seg.segment_stats().expect("segment stats");
        assert_eq!(s.appends, cells, "one record per cell");
    } // drop seals the active segment

    // The manifest is committed next to the store it describes, then read
    // back — the exact flow `zac-serve` uses with `ZAC_WARM_MANIFEST`.
    let manifest_path = segment_dir.join("manifest.json");
    manifest.save(&manifest_path).expect("save manifest");
    let manifest = CorpusManifest::load(&manifest_path).expect("load manifest");
    assert_eq!(manifest.len() as u64, cells);

    // Cold-open + full warm, best of 3 rounds per layout.
    let mut perfile_secs = f64::INFINITY;
    let mut segment_secs = f64::INFINITY;
    let mut segment_warmed = 0;
    for _ in 0..3 {
        let t = Instant::now();
        let c = CompileCache::with_disk(4096, &perfile_dir).expect("reopen per-file");
        let r = c.warm_from_manifest(&manifest);
        perfile_secs = perfile_secs.min(t.elapsed().as_secs_f64());
        assert_eq!(r.warmed as u64, cells, "per-file tier warms every cell");

        let t = Instant::now();
        let c = CompileCache::with_segment_store(4096, &segment_dir).expect("reopen segment");
        let r = c.warm_from_manifest(&manifest);
        segment_secs = segment_secs.min(t.elapsed().as_secs_f64());
        segment_warmed = r.warmed;
        assert_eq!(r.warmed as u64, cells, "segment tier warms every cell");
    }
    let disk_speedup = perfile_secs / segment_secs.max(1e-9);
    println!("\ncold-open warm sweep ({cells} cells, best of 3):");
    println!("  per-file JSON layer: {:>9.2} ms", 1e3 * perfile_secs);
    println!("  segment-log tier:    {:>9.2} ms", 1e3 * segment_secs);
    println!("  speedup:             {disk_speedup:>9.1}x");
    if smoke {
        println!("  (smoke mode: ≥3x bar reported, not asserted)");
    } else {
        assert!(
            disk_speedup >= 3.0,
            "segment tier cold-open warm sweep speedup {disk_speedup:.2}x below the 3x bar \
             ({perfile_secs:.4}s per-file vs {segment_secs:.4}s segment)"
        );
    }

    // ---- 4. Semantic fidelity of the segment round trip -----------------
    // (Checked before the concurrent phase so a codec drift fails fast.)
    let seg = CompileCache::with_segment_store(4096, &segment_dir).expect("reopen segment");
    for (key, direct) in &outputs {
        let stored = seg.get(*key).expect("segment tier serves every cell");
        assert_eq!(
            stored.semantic_json().expect("serialize"),
            direct.semantic_json().expect("serialize"),
            "segment round trip drifted for {key:?}"
        );
    }
    drop(seg);
    println!("segment round trip semantic_json-identical for all {cells} cells ✓");

    // ---- 3. Concurrent writers over one shared directory ----------------
    // Two stores (the two-service topology), eight threads hammering them:
    // a concurrent write wave partitioning the matrix, then a concurrent
    // read wave over the full matrix through both stores.
    let shared_dir = scratch_dir("shared");
    std::fs::remove_dir_all(&shared_dir).ok();
    let stores = [
        CompileCache::with_segment_store(4096, &shared_dir).expect("store A"),
        CompileCache::with_segment_store(4096, &shared_dir).expect("store B"),
    ];
    const THREADS: usize = 8;
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let store = &stores[t % stores.len()];
            let outputs = &outputs;
            scope.spawn(move || {
                for (key, out) in outputs.iter().skip(t).step_by(THREADS) {
                    store.put(*key, out);
                }
            });
        }
    });
    let hits: u64 = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let store = &stores[t % stores.len()];
                let outputs = &outputs;
                scope.spawn(move || {
                    outputs.iter().filter(|(key, _)| store.get(*key).is_some()).count() as u64
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("reader thread")).sum()
    });
    let lookups = cells * THREADS as u64;
    let concurrent_hit_rate = hits as f64 / lookups as f64;
    println!(
        "\nconcurrent writers: {THREADS} threads × {} stores, {hits}/{lookups} hits ({:.1}%)",
        stores.len(),
        100.0 * concurrent_hit_rate
    );
    assert!(
        concurrent_hit_rate >= 0.90,
        "concurrent-writer hit rate {concurrent_hit_rate:.3} below the 90% bar"
    );
    let seg_stats = stores[0].segment_stats().expect("segment stats");
    drop(stores);

    // ---- Report ---------------------------------------------------------
    let doc = Value::Object(vec![
        ("version".into(), num(FORMAT_VERSION as f64)),
        ("smoke".into(), Value::Bool(smoke)),
        ("circuits".into(), num(suite.len() as f64)),
        ("compilers".into(), num(compilers.len() as f64)),
        ("cells".into(), num(cells as f64)),
        (
            "memory".into(),
            Value::Object(vec![
                ("cold_secs".into(), num(cold_time.as_secs_f64())),
                ("warm_secs".into(), num(warm_time.as_secs_f64())),
                ("speedup".into(), num(mem_speedup)),
                ("warm_hit_rate".into(), num(mem_hit_rate)),
            ]),
        ),
        (
            "cold_open_warm_sweep".into(),
            Value::Object(vec![
                ("perfile_secs".into(), num(perfile_secs)),
                ("segment_secs".into(), num(segment_secs)),
                ("speedup".into(), num(disk_speedup)),
                ("warmed".into(), num(segment_warmed as f64)),
            ]),
        ),
        (
            "concurrent".into(),
            Value::Object(vec![
                ("threads".into(), num(THREADS as f64)),
                ("stores".into(), num(2.0)),
                ("lookups".into(), num(lookups as f64)),
                ("hits".into(), num(hits as f64)),
                ("hit_rate".into(), num(concurrent_hit_rate)),
            ]),
        ),
        (
            "segment".into(),
            Value::Object(vec![
                ("appends".into(), num(seg_stats.appends as f64)),
                ("seals".into(), num(seg_stats.seals as f64)),
                ("compacted_records".into(), num(seg_stats.compacted_records as f64)),
                ("recovered_bytes".into(), num(seg_stats.recovered_bytes as f64)),
                ("migrated".into(), num(seg_stats.migrated as f64)),
                ("index_entries".into(), num(seg_stats.index_entries as f64)),
                ("segments".into(), num(seg_stats.segments as f64)),
            ]),
        ),
    ]);
    let out_path = std::env::var("ZAC_BENCH_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_cache.json").to_owned()
    });
    let json = serde_json::to_string_pretty(&doc).expect("JSON serialization");
    std::fs::write(&out_path, json).expect("write BENCH_cache.json");
    println!("\nwrote {out_path}");

    for dir in [&perfile_dir, &segment_dir, &shared_dir] {
        std::fs::remove_dir_all(dir).ok();
    }
}
