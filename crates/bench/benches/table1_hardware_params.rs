//! Table I: hardware parameters used throughout the evaluation.

use zac_bench::print_header;
use zac_fidelity::{NeutralAtomParams, SuperconductingParams};

fn main() {
    print_header("Table I — Hardware parameters", "f2 / f1 / T1q / T2q / T2 per platform");
    println!("{:<16}{:>8}{:>9}{:>12}{:>12}{:>12}", "Platform", "f2", "f1", "T1q", "T2q", "T2");
    let na = NeutralAtomParams::reference();
    println!(
        "{:<16}{:>8}{:>9}{:>12}{:>12}{:>12}",
        "Neutral Atom",
        na.f_2q,
        na.f_1q,
        format!("{}us", na.t_1q_us),
        format!("{}ns", na.t_2q_us * 1000.0),
        format!("{}s", na.t2_us / 1e6)
    );
    for (name, p) in
        [("SC Heron", SuperconductingParams::heron()), ("SC Grid", SuperconductingParams::grid())]
    {
        println!(
            "{:<16}{:>8}{:>9}{:>12}{:>12}{:>12}",
            name,
            p.f_2q,
            p.f_1q,
            format!("{}ns", p.t_1q_us * 1000.0),
            format!("{}ns", p.t_2q_us * 1000.0),
            format!("{}us", p.t2_us)
        );
    }
    println!(
        "\nauxiliary neutral-atom constants: f_exc = {}, f_tran = {}, T_tran = {}us",
        na.f_exc, na.f_tran, na.t_tran_us
    );
}
