//! Fig. 8: circuit fidelity across architectures and compilers.
//!
//! Paper claims reproduced here: ZAC outperforms every baseline on every
//! circuit; geomean improvements of 22× over Enola, 13,350× over Atomique,
//! 4× over NALAC, 1.56× over SC-Heron and 2.33× over SC-Grid.

use zac_bench::{compiler_geomean, print_header, run_architecture_comparison, COMPILERS};

fn main() {
    print_header(
        "Fig. 8 — Architecture comparison (total circuit fidelity)",
        "ZAC wins everywhere; geomean gains: 22x vs Enola, 13350x vs Atomique, \
         4x vs NALAC, 1.56x vs SC-Heron, 2.33x vs SC-Grid",
    );
    let rows = run_architecture_comparison();

    print!("{:<22}{:>6}{:>12}", "circuit", "n", "(2Q,1Q)");
    for c in COMPILERS {
        print!("{c:>22}");
    }
    println!();
    for row in &rows {
        print!(
            "{:<22}{:>6}{:>12}",
            row.name,
            row.qubits,
            format!("({},{})", row.gates.0, row.gates.1)
        );
        for c in COMPILERS {
            match row.result(c) {
                Some(r) => print!("{:>22.4e}", r.fidelity()),
                None => print!("{:>22}", "-"),
            }
        }
        println!();
    }

    print!("{:<40}", "GMean");
    let mut gm = std::collections::HashMap::new();
    for c in COMPILERS {
        let g = compiler_geomean(&rows, c, |r| r.fidelity());
        gm.insert(c, g);
        print!("{g:>22.4e}");
    }
    println!();

    let zac = gm["Zoned-ZAC"];
    println!("\nZAC geomean improvement factors (paper in parentheses):");
    for (c, paper) in [
        ("Monolithic-Enola", "22x"),
        ("Monolithic-Atomique", "13350x"),
        ("Zoned-NALAC", "4x"),
        ("SC-Heron", "1.56x"),
        ("SC-Grid", "2.33x"),
    ] {
        let base = gm[c];
        if base > 0.0 {
            println!("  vs {c:<22} {:>10.2}x   (paper {paper})", zac / base);
        } else {
            println!("  vs {c:<22} {:>10}    (paper {paper})", "inf");
        }
    }

    // Per-circuit headline: bv_n70 shows a 635x gain over the monolithic
    // architecture in the paper.
    if let Some(row) = rows.iter().find(|r| r.name == "bv_n70") {
        if let (Some(z), Some(e)) = (row.result("Zoned-ZAC"), row.result("Monolithic-Enola")) {
            println!(
                "\nbv_n70: ZAC / Enola = {:.0}x   (paper: 635x)",
                z.fidelity() / e.fidelity().max(1e-300)
            );
        }
    }
    if let Some(row) = rows.iter().find(|r| r.name == "ising_n98") {
        if let (Some(z), Some(e)) = (row.result("Zoned-ZAC"), row.result("Monolithic-Enola")) {
            println!(
                "ising_n98: ZAC / Enola = {:.1}x   (paper: 11x)",
                z.fidelity() / e.fidelity().max(1e-300)
            );
        }
    }
}
