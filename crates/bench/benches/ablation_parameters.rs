//! Extended ablation: sweeps of ZAC's internal design parameters.
//!
//! The paper fixes SA at 1000 iterations, the Eq.-3 lookahead at α = 0.1,
//! and uses small candidate windows; this bench quantifies those choices by
//! sweeping each knob with the others held at their defaults.

use zac_arch::Architecture;
use zac_bench::{geomean, print_header};
use zac_circuit::{bench_circuits, preprocess, StagedCircuit};
use zac_core::{Zac, ZacConfig};

fn subset() -> Vec<StagedCircuit> {
    [
        bench_circuits::bv(30, 18),
        bench_circuits::ghz(40),
        bench_circuits::ising(42),
        bench_circuits::qft(18),
        bench_circuits::wstate(27),
    ]
    .iter()
    .map(preprocess)
    .collect()
}

fn gmean_fidelity(circuits: &[StagedCircuit], cfg: &ZacConfig) -> f64 {
    let arch = Architecture::reference();
    let fids: Vec<f64> = circuits
        .iter()
        .filter_map(|s| {
            Zac::with_config(arch.clone(), cfg.clone())
                .compile_staged(s)
                .ok()
                .map(|o| o.total_fidelity())
        })
        .collect();
    geomean(&fids)
}

fn main() {
    print_header(
        "Extended ablation — design-parameter sweeps",
        "paper defaults: SA = 1000 iterations, lookahead α = 0.1, window δ = 2, k = 2",
    );
    let circuits = subset();

    println!("\nSA iteration budget (fidelity geomean over 5-circuit subset):");
    for iters in [0usize, 100, 300, 1000, 3000] {
        let mut cfg = ZacConfig::full();
        cfg.placement.use_sa = iters > 0;
        cfg.placement.sa_iterations = iters.max(1);
        println!("  {iters:>6} iters: {:.4}", gmean_fidelity(&circuits, &cfg));
    }

    println!("\nEq.-3 lookahead weight α:");
    for alpha in [0.0, 0.05, 0.1, 0.3, 1.0] {
        let mut cfg = ZacConfig::full();
        cfg.placement.lookahead_alpha = alpha;
        println!("  α = {alpha:<5}: {:.4}", gmean_fidelity(&circuits, &cfg));
    }

    println!("\ncandidate window expansion δ (gate placement):");
    for delta in [1usize, 2, 4, 8] {
        let mut cfg = ZacConfig::full();
        cfg.placement.window_expansion = delta;
        println!("  δ = {delta:<3}: {:.4}", gmean_fidelity(&circuits, &cfg));
    }

    println!("\nreturn-trap neighborhood k:");
    for k in [0usize, 1, 2, 4, 8] {
        let mut cfg = ZacConfig::full();
        cfg.placement.neighbor_k = k;
        println!("  k = {k:<3}: {:.4}", gmean_fidelity(&circuits, &cfg));
    }
}
