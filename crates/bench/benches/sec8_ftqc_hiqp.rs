//! Sec. VIII: ZAC in fault-tolerant quantum computing.
//!
//! Paper claims: the 128-block hIQP circuit (384 logical qubits, 448
//! transversal gates) compiles to 35 Rydberg stages with a physical duration
//! of 117.847 ms, using all 15 logical sites (the hand-crafted heuristic of
//! Bluvstein et al. uses only 8).

use zac_bench::print_header;
use zac_ftqc::compile_hiqp;

fn main() {
    print_header(
        "Sec. VIII — FTQC hIQP compilation ([[8,3,2]] blocks)",
        "128 blocks / 384 logical qubits / 448 transversal gates → \
         35 Rydberg stages, 117.847 ms",
    );
    println!(
        "{:>8}{:>10}{:>14}{:>12}{:>14}{:>12}",
        "blocks", "logical", "transversal", "stages", "duration", "fidelity"
    );
    for blocks in [16, 32, 64, 128] {
        let r = compile_hiqp(blocks).expect("hIQP compiles");
        println!(
            "{:>8}{:>10}{:>14}{:>12}{:>12.2}ms{:>12.4}",
            r.num_blocks,
            r.logical_qubits,
            r.transversal_gates,
            r.rydberg_stages,
            r.duration_ms,
            r.output.total_fidelity()
        );
    }
    println!(
        "\npaper reference at 128 blocks: 35 stages, 117.847 ms \
         (fidelity not reported at block level)"
    );
}
