//! Fig. 10: circuit duration for the neutral-atom compilers.
//!
//! Paper claims: ZAC achieves 10% and 55% shorter circuit duration than
//! Atomique and NALAC respectively; NALAC's duration blows up on large
//! circuits.

use zac_bench::{compiler_geomean, print_header, run_architecture_comparison};

const NA: [&str; 4] = ["Monolithic-Atomique", "Monolithic-Enola", "Zoned-NALAC", "Zoned-ZAC"];

fn main() {
    print_header(
        "Fig. 10 — Circuit duration (ms)",
        "ZAC: 10% shorter than Atomique, 55% shorter than NALAC (geomean)",
    );
    let rows = run_architecture_comparison();

    print!("{:<22}", "circuit");
    for c in NA {
        print!("{c:>22}");
    }
    println!();
    for row in &rows {
        print!("{:<22}", row.name);
        for c in NA {
            match row.result(c) {
                Some(r) => print!("{:>22.3}", r.report.duration_us / 1000.0),
                None => print!("{:>22}", "-"),
            }
        }
        println!();
    }
    print!("{:<22}", "GMean");
    for c in NA {
        print!("{:>22.3}", compiler_geomean(&rows, c, |r| r.report.duration_us) / 1000.0);
    }
    println!();

    let d = |c: &str| compiler_geomean(&rows, c, |r| r.report.duration_us);
    println!("\nheadline ratios (paper in parentheses):");
    println!(
        "  ZAC vs Atomique: {:.0}% shorter (10%)",
        (1.0 - d("Zoned-ZAC") / d("Monolithic-Atomique")) * 100.0
    );
    println!(
        "  ZAC vs NALAC:    {:.0}% shorter (55%)",
        (1.0 - d("Zoned-ZAC") / d("Zoned-NALAC")) * 100.0
    );
}
