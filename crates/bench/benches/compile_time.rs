//! Compile-time trajectory harness: wall-clock per compiler across the
//! 17-circuit paper suite plus the bundled QASM corpus.
//!
//! Unlike the paper figures, this bench measures *our own* compile latency
//! so perf PRs are measured, not asserted. It sweeps every compiler through
//! `BatchRunner::serial()` (parallel timing would include contention from
//! co-running cells) and emits `BENCH_compile_time.json` at the workspace
//! root — one snapshot of the perf trajectory per run.
//!
//! Environment knobs:
//!
//! * `ZAC_BENCH_SMOKE=1` — smoke mode for CI: reduced SA iterations and the
//!   suite capped to one representative per circuit family, so the sweep
//!   finishes in seconds while still exercising every code path.
//! * `ZAC_BENCH_OUT=<path>` — overrides the JSON output path.
//! * `ZAC_BENCH_BASELINE=<path>` — a previous `BENCH_compile_time.json`;
//!   when set, the report prints per-compiler geomean speedups vs. it.

use serde::Value;
use zac_arch::Architecture;
use zac_bench::{default_compilers, geomean, print_header, BatchRunner, ComparisonRow};
use zac_circuit::{bench_circuits, preprocess, StagedCircuit};
use zac_core::{Compiler, Zac, ZacConfig};

/// Schema version of the emitted JSON.
const FORMAT_VERSION: u64 = 1;

/// One sweep cell: circuit name, total compile seconds, optional
/// (place, schedule) phase split.
type Cell<'a> = (&'a str, f64, Option<(f64, f64)>);

/// The large-circuit tier the acceptance criteria track (the suite's
/// heaviest placement/scheduling instances).
const LARGE_TIER: [&str; 3] = ["ising_n98", "qft_n18", "knn_n31"];

fn main() {
    let smoke = std::env::var("ZAC_BENCH_SMOKE").is_ok_and(|v| v != "0" && !v.is_empty());
    print_header(
        "Compile-time trajectory (wall-clock per compiler, serial sweep)",
        "perf PRs are measured, not asserted: this JSON accumulates per PR",
    );
    if smoke {
        println!("mode: SMOKE (reduced SA iterations, capped suite)\n");
    }

    let suite = build_suite(smoke);
    let compilers = build_compilers(smoke);
    let rows = BatchRunner::serial().run(&compilers, &suite);

    report(&rows, &compilers, smoke);
}

/// The 17-circuit paper suite plus the bundled corpus; smoke mode keeps one
/// circuit per family so CI stays fast while covering every code path.
fn build_suite(smoke: bool) -> Vec<StagedCircuit> {
    let mut suite: Vec<StagedCircuit> =
        bench_circuits::paper_suite().iter().map(|e| preprocess(&e.circuit)).collect();
    if smoke {
        let mut seen = std::collections::HashSet::new();
        suite.retain(|s| {
            let family = s.name.split("_n").next().unwrap_or(&s.name).to_owned();
            seen.insert(family)
        });
        // Keep the large tier in smoke mode too: it is what the perf
        // acceptance criteria track.
        for entry in bench_circuits::paper_suite() {
            if LARGE_TIER.contains(&entry.circuit.name())
                && !suite.iter().any(|s| s.name == entry.circuit.name())
            {
                suite.push(preprocess(&entry.circuit));
            }
        }
    }
    let corpus_dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/corpus");
    let corpus = zac_bench::corpus::load_corpus(corpus_dir);
    for f in &corpus.failures {
        eprintln!("warning: corpus file skipped: {f:?}");
    }
    suite.extend(corpus.suite());
    suite
}

/// The six-compiler lineup; smoke mode swaps ZAC for a reduced-SA variant so
/// the sweep finishes quickly (the relabeled compiler keeps the paper name so
/// JSON rows stay comparable within one mode).
fn build_compilers(smoke: bool) -> Vec<Box<dyn Compiler>> {
    if !smoke {
        return default_compilers();
    }
    let mut cfg = ZacConfig::full();
    cfg.placement.sa_iterations = 100;
    let reduced_zac = Zac::with_config(Architecture::reference(), cfg);
    let mut compilers: Vec<Box<dyn Compiler>> =
        default_compilers().into_iter().filter(|c| c.name() != reduced_zac.name()).collect();
    compilers.push(Box::new(reduced_zac));
    compilers
}

fn report(rows: &[ComparisonRow], compilers: &[Box<dyn Compiler>], smoke: bool) {
    println!(
        "{:<26}{:>8}{:>14}{:>16}{:>18}{:>12}{:>12}",
        "compiler", "cells", "total (s)", "geomean (s)", "large tier (s)", "place (s)", "sched (s)"
    );
    let mut compiler_objs: Vec<Value> = Vec::new();
    for compiler in compilers {
        let name = compiler.name();
        let cells: Vec<Cell<'_>> = rows
            .iter()
            .filter_map(|r| r.result(name).map(|x| (r.name.as_str(), x.compile_secs, x.phase_secs)))
            .collect();
        if cells.is_empty() {
            continue;
        }
        let times: Vec<f64> = cells.iter().map(|&(_, t, _)| t).collect();
        let total: f64 = times.iter().sum();
        let gm = geomean(&times);
        let large: f64 =
            cells.iter().filter(|(n, _, _)| LARGE_TIER.contains(n)).map(|&(_, t, _)| t).sum();
        // Per-phase (place vs. schedule) breakdown, for compilers reporting
        // one (ZAC's pipeline); the phase acceptance criteria track the
        // schedule slice of the large tier.
        let has_phases = cells.iter().any(|(_, _, p)| p.is_some());
        let phase_sum = |pick: fn((f64, f64)) -> f64, large_only: bool| -> f64 {
            cells
                .iter()
                .filter(|(n, _, _)| !large_only || LARGE_TIER.contains(n))
                .filter_map(|&(_, _, p)| p.map(pick))
                .sum()
        };
        let (place, sched) = (phase_sum(|p| p.0, false), phase_sum(|p| p.1, false));
        if has_phases {
            println!(
                "{name:<26}{:>8}{total:>14.4}{gm:>16.6}{large:>18.4}{place:>12.4}{sched:>12.4}",
                cells.len()
            );
        } else {
            println!(
                "{name:<26}{:>8}{total:>14.4}{gm:>16.6}{large:>18.4}{:>12}{:>12}",
                cells.len(),
                "-",
                "-"
            );
        }

        let per_circuit = Value::Array(
            cells
                .iter()
                .map(|&(n, t, p)| {
                    let mut fields = vec![
                        ("circuit".into(), Value::String(n.into())),
                        ("secs".into(), Value::Number(serde::Number::from_f64(t))),
                    ];
                    if let Some((pl, sc)) = p {
                        fields.push((
                            "place_secs".into(),
                            Value::Number(serde::Number::from_f64(pl)),
                        ));
                        fields.push((
                            "schedule_secs".into(),
                            Value::Number(serde::Number::from_f64(sc)),
                        ));
                    }
                    Value::Object(fields)
                })
                .collect(),
        );
        let mut fields = vec![
            ("name".into(), Value::String(name.into())),
            ("cells".into(), Value::Number(serde::Number::from_f64(cells.len() as f64))),
            ("total_secs".into(), Value::Number(serde::Number::from_f64(total))),
            ("geomean_secs".into(), Value::Number(serde::Number::from_f64(gm))),
            ("large_tier_secs".into(), Value::Number(serde::Number::from_f64(large))),
        ];
        if has_phases {
            fields.push(("place_secs".into(), Value::Number(serde::Number::from_f64(place))));
            fields.push(("schedule_secs".into(), Value::Number(serde::Number::from_f64(sched))));
            fields.push((
                "large_tier_place_secs".into(),
                Value::Number(serde::Number::from_f64(phase_sum(|p| p.0, true))),
            ));
            fields.push((
                "large_tier_schedule_secs".into(),
                Value::Number(serde::Number::from_f64(phase_sum(|p| p.1, true))),
            ));
        }
        fields.push(("per_circuit".into(), per_circuit));
        compiler_objs.push(Value::Object(fields));
    }

    let doc = Value::Object(vec![
        ("version".into(), Value::Number(serde::Number::from_f64(FORMAT_VERSION as f64))),
        ("smoke".into(), Value::Bool(smoke)),
        (
            "large_tier".into(),
            Value::Array(LARGE_TIER.iter().map(|n| Value::String((*n).into())).collect()),
        ),
        ("num_circuits".into(), Value::Number(serde::Number::from_f64(rows.len() as f64))),
        ("compilers".into(), Value::Array(compiler_objs)),
    ]);

    let out_path = std::env::var("ZAC_BENCH_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_compile_time.json").to_owned()
    });
    let json = serde_json::to_string_pretty(&doc).expect("JSON serialization");
    std::fs::write(&out_path, json).expect("write BENCH_compile_time.json");
    println!("\nwrote {out_path}");

    if let Ok(baseline_path) = std::env::var("ZAC_BENCH_BASELINE") {
        match std::fs::read_to_string(&baseline_path)
            .ok()
            .and_then(|s| serde_json::from_str::<Value>(&s).ok())
        {
            Some(baseline) => print_speedups(&doc, &baseline, &baseline_path),
            None => eprintln!("warning: could not read baseline {baseline_path}"),
        }
    }
}

/// Prints per-compiler geomean and large-tier speedups vs. a previous run.
/// Smoke and full runs measure different suites and SA budgets, so
/// cross-mode comparisons are refused instead of silently misleading.
fn print_speedups(current: &Value, baseline: &Value, baseline_path: &str) {
    let mode = |doc: &Value| doc.get("smoke").cloned();
    if mode(current) != mode(baseline) {
        println!(
            "\nbaseline {baseline_path} was recorded in a different mode \
             (smoke vs. full); skipping the speedup comparison"
        );
        return;
    }
    println!("\nspeedup vs. baseline {baseline_path} (>1 = faster now):");
    let lookup = |doc: &Value, name: &str, field: &str| -> Option<f64> {
        doc.get("compilers")?.as_array()?.iter().find_map(|c| {
            (c.get("name")?.as_str()? == name).then_some(())?;
            c.get(field)?.as_f64()
        })
    };
    let Some(compilers) = current.get("compilers").and_then(Value::as_array) else {
        return;
    };
    for c in compilers {
        let Some(name) = c.get("name").and_then(Value::as_str) else { continue };
        for (field, label) in [
            ("geomean_secs", "geomean"),
            ("large_tier_secs", "large tier"),
            ("place_secs", "place phase"),
            ("schedule_secs", "sched phase"),
            ("large_tier_place_secs", "lt place"),
            ("large_tier_schedule_secs", "lt sched"),
        ] {
            if let (Some(now), Some(then)) =
                (lookup(current, name, field), lookup(baseline, name, field))
            {
                if now > 0.0 && then > 0.0 {
                    println!("  {name:<26}{label:<12}{:>8.2}x", then / now);
                }
            }
        }
    }
}
