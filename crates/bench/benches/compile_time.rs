//! Compile-time trajectory harness: wall-clock per compiler across the
//! 17-circuit paper suite plus the bundled QASM corpus.
//!
//! Unlike the paper figures, this bench measures *our own* compile latency
//! so perf PRs are measured, not asserted. It sweeps every compiler through
//! `BatchRunner::serial()` (parallel timing would include contention from
//! co-running cells) and emits `BENCH_compile_time.json` at the workspace
//! root — one snapshot of the perf trajectory per run.
//!
//! Environment knobs:
//!
//! * `ZAC_BENCH_SMOKE=1` — smoke mode for CI: reduced SA iterations and the
//!   suite capped to one representative per circuit family, so the sweep
//!   finishes in seconds while still exercising every code path.
//! * `ZAC_BENCH_OUT=<path>` — overrides the JSON output path.
//! * `ZAC_BENCH_BASELINE=<path>` — a previous `BENCH_compile_time.json`;
//!   when set, the report prints per-compiler geomean speedups vs. it.
//! * `--engine exhaustive|windowed|both` (or `ZAC_BENCH_ENGINE`) — which
//!   ZAC placement-engine arms to sweep. `both` (the default) runs the
//!   exhaustive pipeline *and* a `Zoned-ZAC-windowed` arm, and emits a
//!   quality/speed `frontier` block into the JSON: per-circuit compile-time
//!   speedup, fidelity delta, and placement movement-cost ratio.
//! * `ZAC_TELEMETRY=1` — records the sweep through `zac-telemetry`: the JSON
//!   gains a `metrics` block (one counter/histogram snapshot per circuit,
//!   attributed via `BatchRunner::run_with_metrics`) and the span tree is
//!   exported as a Chrome-trace file.
//! * `ZAC_TRACE_OUT=<path>` — overrides the Chrome-trace output path
//!   (default `BENCH_compile_time.trace.json` at the workspace root).

use serde::Value;
use zac_arch::{Architecture, GeomCache};
use zac_bench::{
    default_compilers, geomean, print_header, BatchRunner, CircuitMetrics, ComparisonRow,
};
use zac_circuit::{bench_circuits, preprocess, StagedCircuit};
use zac_core::{Compiler, Labeled, Zac, ZacConfig};
use zac_place::{plan_placement, PlacementEngine};

/// Schema version of the emitted JSON.
const FORMAT_VERSION: u64 = 1;

/// One sweep cell: circuit name, total compile seconds, optional
/// (place, schedule) phase split.
type Cell<'a> = (&'a str, f64, Option<(f64, f64)>);

/// The large-circuit tier the acceptance criteria track (the suite's
/// heaviest placement/scheduling instances).
const LARGE_TIER: [&str; 3] = ["ising_n98", "qft_n18", "knn_n31"];

/// The two ZAC placement-engine arms of the frontier.
const ZAC_EXHAUSTIVE: &str = "Zoned-ZAC";
const ZAC_WINDOWED: &str = "Zoned-ZAC-windowed";

/// Which placement-engine arms to sweep (the `--engine` axis).
#[derive(Clone, Copy, PartialEq)]
enum EngineAxis {
    Exhaustive,
    Windowed,
    Both,
}

impl EngineAxis {
    /// Parses `--engine <value>` from the CLI (after cargo-bench's `--`),
    /// falling back to `ZAC_BENCH_ENGINE`, defaulting to `both`.
    fn parse() -> Self {
        let mut args = std::env::args();
        let cli = std::iter::from_fn(|| args.next())
            .skip_while(|a| a != "--engine")
            .nth(1)
            .or_else(|| std::env::var("ZAC_BENCH_ENGINE").ok());
        match cli.as_deref() {
            Some("exhaustive") => Self::Exhaustive,
            Some("windowed") => Self::Windowed,
            Some("both") | None => Self::Both,
            Some(other) => panic!("unknown --engine '{other}' (exhaustive|windowed|both)"),
        }
    }

    fn runs(self, arm: &str) -> bool {
        match self {
            Self::Exhaustive => arm == ZAC_EXHAUSTIVE,
            Self::Windowed => arm == ZAC_WINDOWED,
            Self::Both => true,
        }
    }
}

fn main() {
    let smoke = std::env::var("ZAC_BENCH_SMOKE").is_ok_and(|v| v != "0" && !v.is_empty());
    let axis = EngineAxis::parse();
    print_header(
        "Compile-time trajectory (wall-clock per compiler, serial sweep)",
        "perf PRs are measured, not asserted: this JSON accumulates per PR",
    );
    if smoke {
        println!("mode: SMOKE (reduced SA iterations, capped suite)\n");
    }

    let suite = build_suite(smoke);
    let compilers = build_compilers(smoke, axis);
    // With telemetry on, `run_with_metrics` snapshots the registry around
    // each circuit so counters are attributed per circuit; the plain path
    // stays byte-for-byte what it was when telemetry is off.
    let telemetry = zac_telemetry::enabled();
    let (rows, metrics) = if telemetry {
        let (rows, metrics) = BatchRunner::serial().run_with_metrics(&compilers, &suite);
        (rows, Some(metrics))
    } else {
        (BatchRunner::serial().run(&compilers, &suite), None)
    };

    report(&rows, &compilers, &suite, smoke, metrics.as_deref());
    if telemetry {
        write_chrome_trace();
    }
}

/// Drains the recorded spans and writes them as a Chrome-trace-format file
/// (loadable in `chrome://tracing` or Perfetto). Sanity-checks that the
/// pipeline phase spans actually made it into the tree so CI fails loudly
/// if instrumentation regresses.
fn write_chrome_trace() {
    let spans = zac_telemetry::take_spans();
    for phase in ["core.compile", "core.place", "core.schedule"] {
        assert!(
            spans.iter().any(|s| s.name == phase),
            "telemetry enabled but no '{phase}' span was recorded"
        );
    }
    let path = std::env::var("ZAC_TRACE_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_compile_time.trace.json").to_owned()
    });
    std::fs::write(&path, zac_telemetry::chrome_trace_json(&spans))
        .expect("write Chrome-trace JSON");
    println!("wrote {path} ({} spans)", spans.len());
}

/// The 17-circuit paper suite plus the bundled corpus; smoke mode keeps one
/// circuit per family so CI stays fast while covering every code path.
fn build_suite(smoke: bool) -> Vec<StagedCircuit> {
    let mut suite: Vec<StagedCircuit> =
        bench_circuits::paper_suite().iter().map(|e| preprocess(&e.circuit)).collect();
    if smoke {
        let mut seen = std::collections::HashSet::new();
        suite.retain(|s| {
            let family = s.name.split("_n").next().unwrap_or(&s.name).to_owned();
            seen.insert(family)
        });
        // Keep the large tier in smoke mode too: it is what the perf
        // acceptance criteria track.
        for entry in bench_circuits::paper_suite() {
            if LARGE_TIER.contains(&entry.circuit.name())
                && !suite.iter().any(|s| s.name == entry.circuit.name())
            {
                suite.push(preprocess(&entry.circuit));
            }
        }
    }
    let corpus_dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/corpus");
    let corpus = zac_bench::corpus::load_corpus(corpus_dir);
    for f in &corpus.failures {
        eprintln!("warning: corpus file skipped: {f:?}");
    }
    suite.extend(corpus.suite());
    suite
}

/// ZAC's pipeline configuration for one engine arm (smoke mode reduces the
/// SA budget identically for both arms, keeping the frontier comparable).
fn arm_config(engine: PlacementEngine, smoke: bool) -> ZacConfig {
    let mut cfg = ZacConfig::full();
    cfg.placement.engine = engine;
    if smoke {
        cfg.placement.sa_iterations = 100;
    }
    cfg
}

/// The compiler lineup: the six-compiler paper comparison plus (under
/// `--engine both`/`windowed`) the windowed-engine ZAC arm. Smoke mode swaps
/// ZAC for a reduced-SA variant so the sweep finishes quickly (the relabeled
/// compiler keeps the paper name so JSON rows stay comparable within one
/// mode).
fn build_compilers(smoke: bool, axis: EngineAxis) -> Vec<Box<dyn Compiler>> {
    let exhaustive =
        Zac::with_config(Architecture::reference(), arm_config(PlacementEngine::Exhaustive, smoke));
    let mut compilers: Vec<Box<dyn Compiler>> =
        default_compilers().into_iter().filter(|c| c.name() != ZAC_EXHAUSTIVE).collect();
    if axis.runs(ZAC_EXHAUSTIVE) {
        // `Zac`'s own name is already the paper label; the engine is pinned
        // explicitly so `ZAC_PLACER` in the environment cannot skew the arm.
        compilers.push(Box::new(exhaustive));
    }
    if axis.runs(ZAC_WINDOWED) {
        compilers.push(Box::new(Labeled::new(
            ZAC_WINDOWED,
            Zac::with_config(
                Architecture::reference(),
                arm_config(PlacementEngine::windowed(), smoke),
            ),
        )));
    }
    compilers
}

fn report(
    rows: &[ComparisonRow],
    compilers: &[Box<dyn Compiler>],
    suite: &[StagedCircuit],
    smoke: bool,
    metrics: Option<&[CircuitMetrics]>,
) {
    println!(
        "{:<26}{:>8}{:>14}{:>16}{:>18}{:>12}{:>12}",
        "compiler", "cells", "total (s)", "geomean (s)", "large tier (s)", "place (s)", "sched (s)"
    );
    let mut compiler_objs: Vec<Value> = Vec::new();
    for compiler in compilers {
        let name = compiler.name();
        let cells: Vec<Cell<'_>> = rows
            .iter()
            .filter_map(|r| r.result(name).map(|x| (r.name.as_str(), x.compile_secs, x.phase_secs)))
            .collect();
        if cells.is_empty() {
            continue;
        }
        let times: Vec<f64> = cells.iter().map(|&(_, t, _)| t).collect();
        let total: f64 = times.iter().sum();
        let gm = geomean(&times);
        let large: f64 =
            cells.iter().filter(|(n, _, _)| LARGE_TIER.contains(n)).map(|&(_, t, _)| t).sum();
        // Per-phase (place vs. schedule) breakdown, for compilers reporting
        // one (ZAC's pipeline); the phase acceptance criteria track the
        // schedule slice of the large tier.
        let has_phases = cells.iter().any(|(_, _, p)| p.is_some());
        let phase_sum = |pick: fn((f64, f64)) -> f64, large_only: bool| -> f64 {
            cells
                .iter()
                .filter(|(n, _, _)| !large_only || LARGE_TIER.contains(n))
                .filter_map(|&(_, _, p)| p.map(pick))
                .sum()
        };
        let (place, sched) = (phase_sum(|p| p.0, false), phase_sum(|p| p.1, false));
        if has_phases {
            println!(
                "{name:<26}{:>8}{total:>14.4}{gm:>16.6}{large:>18.4}{place:>12.4}{sched:>12.4}",
                cells.len()
            );
        } else {
            println!(
                "{name:<26}{:>8}{total:>14.4}{gm:>16.6}{large:>18.4}{:>12}{:>12}",
                cells.len(),
                "-",
                "-"
            );
        }

        let per_circuit = Value::Array(
            cells
                .iter()
                .map(|&(n, t, p)| {
                    let mut fields = vec![
                        ("circuit".into(), Value::String(n.into())),
                        ("secs".into(), Value::Number(serde::Number::from_f64(t))),
                    ];
                    if let Some((pl, sc)) = p {
                        fields.push((
                            "place_secs".into(),
                            Value::Number(serde::Number::from_f64(pl)),
                        ));
                        fields.push((
                            "schedule_secs".into(),
                            Value::Number(serde::Number::from_f64(sc)),
                        ));
                    }
                    Value::Object(fields)
                })
                .collect(),
        );
        let mut fields = vec![
            ("name".into(), Value::String(name.into())),
            ("cells".into(), Value::Number(serde::Number::from_f64(cells.len() as f64))),
            ("total_secs".into(), Value::Number(serde::Number::from_f64(total))),
            ("geomean_secs".into(), Value::Number(serde::Number::from_f64(gm))),
            ("large_tier_secs".into(), Value::Number(serde::Number::from_f64(large))),
        ];
        if has_phases {
            fields.push(("place_secs".into(), Value::Number(serde::Number::from_f64(place))));
            fields.push(("schedule_secs".into(), Value::Number(serde::Number::from_f64(sched))));
            fields.push((
                "large_tier_place_secs".into(),
                Value::Number(serde::Number::from_f64(phase_sum(|p| p.0, true))),
            ));
            fields.push((
                "large_tier_schedule_secs".into(),
                Value::Number(serde::Number::from_f64(phase_sum(|p| p.1, true))),
            ));
        }
        fields.push(("per_circuit".into(), per_circuit));
        compiler_objs.push(Value::Object(fields));
    }

    let mut doc_fields = vec![
        ("version".into(), Value::Number(serde::Number::from_f64(FORMAT_VERSION as f64))),
        ("smoke".into(), Value::Bool(smoke)),
        (
            "large_tier".into(),
            Value::Array(LARGE_TIER.iter().map(|n| Value::String((*n).into())).collect()),
        ),
        ("num_circuits".into(), Value::Number(serde::Number::from_f64(rows.len() as f64))),
        ("compilers".into(), Value::Array(compiler_objs)),
    ];
    if let Some(frontier) = frontier_block(rows, suite, smoke) {
        doc_fields.push(("frontier".into(), frontier));
    }
    if let Some(per) = metrics {
        doc_fields.push(("metrics".into(), metrics_block(per)));
    }
    let doc = Value::Object(doc_fields);

    let out_path = std::env::var("ZAC_BENCH_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_compile_time.json").to_owned()
    });
    let json = serde_json::to_string_pretty(&doc).expect("JSON serialization");
    std::fs::write(&out_path, json).expect("write BENCH_compile_time.json");
    println!("\nwrote {out_path}");

    if let Ok(baseline_path) = std::env::var("ZAC_BENCH_BASELINE") {
        match std::fs::read_to_string(&baseline_path)
            .ok()
            .and_then(|s| serde_json::from_str::<Value>(&s).ok())
        {
            Some(baseline) => print_speedups(&doc, &baseline, &baseline_path),
            None => eprintln!("warning: could not read baseline {baseline_path}"),
        }
    }
}

/// The per-circuit telemetry block: one `zac-telemetry` snapshot delta per
/// circuit (counters accumulated across every compiler arm that swept it)
/// plus a whole-run total. Each snapshot is validated before it is embedded
/// so the CI assertion on the emitted JSON cannot silently pass on an empty
/// block.
fn metrics_block(per: &[CircuitMetrics]) -> Value {
    let mut per_circuit = Vec::with_capacity(per.len());
    for cm in per {
        // Every circuit is swept by at least one ZAC arm, so the pipeline
        // counters must be non-zero; a zero here means instrumentation or
        // attribution broke.
        assert!(
            cm.metrics.counter("core.pipeline.compiles") >= 1,
            "no core.pipeline.compiles recorded for {}",
            cm.circuit
        );
        for prefix in ["place.", "schedule."] {
            assert!(
                cm.metrics.counter_sum_with_prefix(prefix) > 0,
                "no {prefix} counters recorded for {}",
                cm.circuit
            );
        }
        let snapshot = serde_json::from_str::<Value>(&cm.metrics.to_json())
            .expect("telemetry snapshot is valid JSON");
        assert!(snapshot.get("counters").is_some(), "snapshot missing 'counters'");
        per_circuit.push(Value::Object(vec![
            ("circuit".into(), Value::String(cm.circuit.clone())),
            ("snapshot".into(), snapshot),
        ]));
    }
    let totals =
        serde_json::from_str::<Value>(&zac_telemetry::MetricsSnapshot::capture().to_json())
            .expect("telemetry snapshot is valid JSON");
    Value::Object(vec![
        ("per_circuit".into(), Value::Array(per_circuit)),
        ("totals".into(), totals),
    ])
}

/// Placement movement cost (paper Eq. 1) of one circuit under one engine,
/// mirroring `Zac::compile_staged`'s stage-width splitting so the plan is the
/// one the compiler arm actually scheduled.
fn movement_cost(
    arch: &Architecture,
    geom: &GeomCache,
    staged: &StagedCircuit,
    engine: PlacementEngine,
    smoke: bool,
) -> Option<f64> {
    let num_sites = arch.num_sites();
    let split;
    let staged = if staged.max_parallelism() > num_sites && num_sites > 0 {
        split = staged.with_max_stage_width(num_sites);
        &split
    } else {
        staged
    };
    let cfg = arm_config(engine, smoke).placement;
    plan_placement(arch, staged, &cfg).ok().map(|plan| plan.movement_cost(geom))
}

/// The quality/speed frontier between the exhaustive and windowed ZAC arms:
/// per-circuit compile-time speedup, fidelity delta, and placement
/// movement-cost ratio, plus the large-tier aggregates the acceptance
/// criteria track. `None` unless both arms were swept.
fn frontier_block(rows: &[ComparisonRow], suite: &[StagedCircuit], smoke: bool) -> Option<Value> {
    let arch = Architecture::reference();
    let geom = GeomCache::new(&arch);
    let num = serde::Number::from_f64;
    let mut per_circuit = Vec::new();
    let (mut exh_large, mut win_large) = (0.0, 0.0);
    let (mut exh_cost_all, mut win_cost_all) = (0.0, 0.0);
    let (mut exh_cost_large, mut win_cost_large) = (0.0, 0.0);
    println!(
        "\nengine frontier ({ZAC_EXHAUSTIVE} vs. {ZAC_WINDOWED}):\n\
         {:<20}{:>10}{:>10}{:>8}{:>12}{:>12}{:>10}",
        "circuit", "exh (ms)", "win (ms)", "speed", "Δfidelity", "cost ratio", ""
    );
    for row in rows {
        let Some((exh, win)) = row.result(ZAC_EXHAUSTIVE).zip(row.result(ZAC_WINDOWED)) else {
            continue;
        };
        let Some(staged) = suite.iter().find(|s| s.name == row.name) else { continue };
        let speedup = exh.compile_secs / win.compile_secs;
        let fid_delta = win.fidelity() - exh.fidelity();
        let costs = movement_cost(&arch, &geom, staged, PlacementEngine::Exhaustive, smoke)
            .zip(movement_cost(&arch, &geom, staged, PlacementEngine::windowed(), smoke));
        if LARGE_TIER.contains(&row.name.as_str()) {
            exh_large += exh.compile_secs;
            win_large += win.compile_secs;
        }
        let mut fields = vec![
            ("circuit".into(), Value::String(row.name.clone())),
            ("exhaustive_secs".into(), Value::Number(num(exh.compile_secs))),
            ("windowed_secs".into(), Value::Number(num(win.compile_secs))),
            ("speedup".into(), Value::Number(num(speedup))),
            ("fidelity_delta".into(), Value::Number(num(fid_delta))),
        ];
        let mut ratio_str = "-".to_owned();
        if let Some((ce, cw)) = costs {
            exh_cost_all += ce;
            win_cost_all += cw;
            if LARGE_TIER.contains(&row.name.as_str()) {
                exh_cost_large += ce;
                win_cost_large += cw;
            }
            fields.push(("exhaustive_movement_cost".into(), Value::Number(num(ce))));
            fields.push(("windowed_movement_cost".into(), Value::Number(num(cw))));
            if ce > 0.0 {
                ratio_str = format!("{:.4}", cw / ce);
            }
        }
        println!(
            "{:<20}{:>10.3}{:>10.3}{:>8.2}{:>12.2e}{:>12}{:>10}",
            row.name,
            exh.compile_secs * 1e3,
            win.compile_secs * 1e3,
            speedup,
            fid_delta,
            ratio_str,
            ""
        );
        per_circuit.push(Value::Object(fields));
    }
    if per_circuit.is_empty() {
        return None;
    }
    let large_speedup = if win_large > 0.0 { exh_large / win_large } else { 1.0 };
    let cost_ratio = if exh_cost_all > 0.0 { win_cost_all / exh_cost_all } else { 1.0 };
    let large_cost_ratio = if exh_cost_large > 0.0 { win_cost_large / exh_cost_large } else { 1.0 };
    println!(
        "frontier aggregates: large-tier speedup {large_speedup:.2}x, suite cost ratio \
         {cost_ratio:.4}, large-tier cost ratio {large_cost_ratio:.4}"
    );
    Some(Value::Object(vec![
        ("reference".into(), Value::String(ZAC_EXHAUSTIVE.into())),
        ("fast".into(), Value::String(ZAC_WINDOWED.into())),
        ("large_tier_speedup".into(), Value::Number(num(large_speedup))),
        ("movement_cost_ratio".into(), Value::Number(num(cost_ratio))),
        ("large_tier_movement_cost_ratio".into(), Value::Number(num(large_cost_ratio))),
        ("per_circuit".into(), Value::Array(per_circuit)),
    ]))
}

/// Prints per-compiler geomean and large-tier speedups vs. a previous run.
/// Smoke and full runs measure different suites and SA budgets, so
/// cross-mode comparisons are refused instead of silently misleading.
fn print_speedups(current: &Value, baseline: &Value, baseline_path: &str) {
    let mode = |doc: &Value| doc.get("smoke").cloned();
    if mode(current) != mode(baseline) {
        println!(
            "\nbaseline {baseline_path} was recorded in a different mode \
             (smoke vs. full); skipping the speedup comparison"
        );
        return;
    }
    println!("\nspeedup vs. baseline {baseline_path} (>1 = faster now):");
    let lookup = |doc: &Value, name: &str, field: &str| -> Option<f64> {
        doc.get("compilers")?.as_array()?.iter().find_map(|c| {
            (c.get("name")?.as_str()? == name).then_some(())?;
            c.get(field)?.as_f64()
        })
    };
    let Some(compilers) = current.get("compilers").and_then(Value::as_array) else {
        return;
    };
    for c in compilers {
        let Some(name) = c.get("name").and_then(Value::as_str) else { continue };
        for (field, label) in [
            ("geomean_secs", "geomean"),
            ("large_tier_secs", "large tier"),
            ("place_secs", "place phase"),
            ("schedule_secs", "sched phase"),
            ("large_tier_place_secs", "lt place"),
            ("large_tier_schedule_secs", "lt sched"),
        ] {
            if let (Some(now), Some(then)) =
                (lookup(current, name, field), lookup(baseline, name, field))
            {
                if now > 0.0 && then > 0.0 {
                    println!("  {name:<26}{label:<12}{:>8.2}x", then / now);
                }
            }
        }
    }
}
