//! Fig. 9: fidelity breakdown (2Q gate / atom transfer / decoherence) for
//! the four neutral-atom compilers.
//!
//! Paper claims: ZAC's 2Q component is 1.37× better than NALAC and 14×
//! better than Enola; transfer fidelity 1.03× better than Enola; decoherence
//! 1.36× better than Atomique.

use zac_bench::{compiler_geomean, print_header, run_architecture_comparison};

const NA: [&str; 4] = ["Monolithic-Atomique", "Monolithic-Enola", "Zoned-NALAC", "Zoned-ZAC"];

fn main() {
    print_header(
        "Fig. 9 — Fidelity breakdown (neutral-atom compilers)",
        "2Q: ZAC 1.37x vs NALAC, 14x vs Enola; transfer: 1.03x vs Enola; \
         decoherence: 1.36x vs Atomique",
    );
    let rows = run_architecture_comparison();

    for (title, f) in [
        ("2Q gate fidelity (f2^g2 * fexc^Nexc)", 0usize),
        ("atom transfer fidelity (ftran^Ntran)", 1usize),
        ("decoherence fidelity", 2usize),
    ] {
        println!("\n--- {title} ---");
        print!("{:<22}", "circuit");
        for c in NA {
            print!("{c:>22}");
        }
        println!();
        let component = |r: &zac_bench::RunResult| match f {
            0 => r.report.two_q,
            1 => r.report.transfer,
            _ => r.report.decoherence,
        };
        for row in &rows {
            print!("{:<22}", row.name);
            for c in NA {
                match row.result(c) {
                    Some(r) => print!("{:>22.4e}", component(r)),
                    None => print!("{:>22}", "-"),
                }
            }
            println!();
        }
        print!("{:<22}", "GMean");
        for c in NA {
            print!("{:>22.4e}", compiler_geomean(&rows, c, component));
        }
        println!();
    }

    // Headline ratios.
    let g2 = |c: &str| compiler_geomean(&rows, c, |r| r.report.two_q);
    let tr = |c: &str| compiler_geomean(&rows, c, |r| r.report.transfer);
    let de = |c: &str| compiler_geomean(&rows, c, |r| r.report.decoherence);
    println!("\nheadline ratios (paper in parentheses):");
    println!(
        "  2Q:   ZAC/NALAC = {:.2}x (1.37x), ZAC/Enola = {:.1}x (14x)",
        g2("Zoned-ZAC") / g2("Zoned-NALAC").max(1e-300),
        g2("Zoned-ZAC") / g2("Monolithic-Enola").max(1e-300)
    );
    println!(
        "  tran: ZAC/Enola = {:.3}x (1.03x)",
        tr("Zoned-ZAC") / tr("Monolithic-Enola").max(1e-300)
    );
    println!(
        "  deco: ZAC/Atomique = {:.2}x (1.36x)",
        de("Zoned-ZAC") / de("Monolithic-Atomique").max(1e-300)
    );
}
