//! Sec. IX: ZAIR instruction statistics.
//!
//! Paper claims: across the benchmark set, 0.85 ZAIR instructions per gate
//! and 1.77 machine-level instructions per gate (geometric means).

use zac_arch::Architecture;
use zac_bench::{geomean, print_header, zac_config};
use zac_circuit::{bench_circuits, preprocess};
use zac_core::Zac;

fn main() {
    print_header(
        "Sec. IX — ZAIR instruction statistics",
        "0.85 ZAIR inst/gate and 1.77 machine inst/gate (geomean)",
    );
    println!(
        "{:<22}{:>8}{:>10}{:>10}{:>10}{:>14}{:>16}",
        "circuit", "gates", "zair", "machine", "jobs", "zair/gate", "machine/gate"
    );
    let mut zair_ratio = Vec::new();
    let mut machine_ratio = Vec::new();
    for entry in bench_circuits::paper_suite() {
        let staged = preprocess(&entry.circuit);
        let zac = Zac::with_config(Architecture::reference(), zac_config());
        let Ok(out) = zac.compile_staged(&staged) else {
            continue;
        };
        let stats = out.program.stats();
        let gates = (staged.num_1q_gates() + staged.num_2q_gates()) as f64;
        let zr = stats.zair_instructions as f64 / gates;
        let mr = stats.machine_instructions as f64 / gates;
        println!(
            "{:<22}{gates:>8}{:>10}{:>10}{:>10}{zr:>14.3}{mr:>16.3}",
            staged.name, stats.zair_instructions, stats.machine_instructions, stats.jobs
        );
        zair_ratio.push(zr);
        machine_ratio.push(mr);
    }
    println!(
        "\nGMean: zair/gate = {:.2} (paper 0.85), machine/gate = {:.2} (paper 1.77)",
        geomean(&zair_ratio),
        geomean(&machine_ratio)
    );
    println!(
        "note: our 1qGate instructions are grouped per stage; the exact ratio\n\
         depends on that grouping granularity (see DESIGN.md §4)."
    );
}
