//! Fig. 1c: fidelity breakdown on the monolithic architecture.
//!
//! Paper claim: even with the optimal number of Rydberg exposures, side-
//! effect excitation of idle qubits (blue in the figure) dominates the error
//! budget of monolithic compilation.

use zac_baselines::compile_enola;
use zac_bench::print_header;
use zac_circuit::{bench_circuits, preprocess};
use zac_fidelity::NeutralAtomParams;

fn main() {
    print_header(
        "Fig. 1c — Monolithic fidelity breakdown (Enola)",
        "idle-qubit Rydberg excitation dominates the monolithic error budget",
    );
    let p = NeutralAtomParams::reference();
    println!(
        "{:<22}{:>12}{:>12}{:>12}{:>12}{:>12}{:>14}",
        "circuit", "2Q-pure", "excitation", "1Q", "transfer", "decoherence", "total"
    );
    for entry in bench_circuits::paper_suite() {
        let staged = preprocess(&entry.circuit);
        let Ok(out) = compile_enola(&staged, 10, 10, &p) else {
            continue;
        };
        let s = &out.summary;
        let f_gates = p.f_2q.powi(s.g2 as i32);
        let f_exc = p.f_exc.powi(s.n_exc as i32);
        println!(
            "{:<22}{f_gates:>12.4}{f_exc:>12.4e}{:>12.4}{:>12.4}{:>12.4}{:>14.4e}",
            s.name,
            out.report.one_q,
            out.report.transfer,
            out.report.decoherence,
            out.report.total()
        );
    }
    println!(
        "\nthe 'excitation' column is consistently the smallest factor, i.e. the\n\
         dominant error source — motivating the zoned architecture (Fig. 1b)."
    );
}
