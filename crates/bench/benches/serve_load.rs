//! Load generator for the `zac-serve` compile service: replays the bundled
//! QASM corpus (`tests/corpus/` at the workspace root) against an
//! in-process [`Service`] at a target client concurrency, through the same
//! wire entry point (`submit_line`) the binary uses.
//!
//! Two waves run back to back: a cold wave that populates the shared
//! cache, then — after a barrier — a warm wave that must be served from
//! it. Reported per wave: request latency percentiles (p50/p90/p99),
//! throughput, aggregate phase timings, and the cache hit rate; the warm
//! wave must hit on ≥ 90% of lookups (asserted — this bench doubles as the
//! serving-layer load test).
//!
//! Run with `cargo bench -p zac-bench --bench serve_load`. Environment:
//!
//! * `ZAC_LOAD_CONCURRENCY` — concurrent client threads (default 4);
//! * `ZAC_LOAD_REQUESTS`    — requests per client per wave (default 4);
//! * `ZAC_SERVE_WORKERS`    — service worker threads (default: CPUs ≤ 8);
//! * `ZAC_SERVE_LOAD_OUT`   — write the full report as JSON to this path.

use std::path::Path;
use std::sync::{Arc, Barrier, Mutex};
use std::time::Instant;
use zac_bench::print_header;
use zac_serve::{CircuitEntry, Request, Response, Service, ServiceConfig};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// One request's observables, as reported by its terminal `Done`.
struct Sample {
    latency_ms: u64,
    place_ns: u64,
    schedule_ns: u64,
}

fn percentile(sorted_ms: &[u64], p: f64) -> u64 {
    if sorted_ms.is_empty() {
        return 0;
    }
    let rank = (p / 100.0 * (sorted_ms.len() - 1) as f64).round() as usize;
    sorted_ms[rank.min(sorted_ms.len() - 1)]
}

/// Replays `requests` corpus batches per client across `clients` threads;
/// returns every request's sample.
fn wave(
    service: &Arc<Service>,
    corpus: &Arc<Vec<(String, String)>>,
    wave_name: &str,
    clients: usize,
    requests: usize,
) -> Vec<Sample> {
    let samples = Arc::new(Mutex::new(Vec::new()));
    let start = Arc::new(Barrier::new(clients));
    std::thread::scope(|scope| {
        for client in 0..clients {
            let service = Arc::clone(service);
            let corpus = Arc::clone(corpus);
            let samples = Arc::clone(&samples);
            let start = Arc::clone(&start);
            let wave_name = wave_name.to_string();
            scope.spawn(move || {
                start.wait();
                for seq in 0..requests {
                    let request = Request::new(
                        format!("{wave_name}-c{client}-r{seq}"),
                        "Zoned-ZAC",
                        corpus
                            .iter()
                            .map(|(name, qasm)| CircuitEntry {
                                name: name.clone(),
                                qasm: qasm.clone(),
                            })
                            .collect(),
                    );
                    // The wire entry point, exactly as the binary drives it.
                    let line = serde_json::to_string(&request).expect("request serializes");
                    for response in service.submit_line(&line) {
                        match response {
                            Response::Result { name, outcome, .. } => {
                                assert!(outcome.output().is_some(), "{name} must compile");
                            }
                            Response::Done(done) => {
                                assert_eq!(done.ok, corpus.len(), "{}", done.id);
                                samples.lock().unwrap().push(Sample {
                                    latency_ms: done.latency_ms,
                                    place_ns: done.phase_totals.place_ns,
                                    schedule_ns: done.phase_totals.schedule_ns,
                                });
                            }
                            other => panic!("unexpected response: {other:?}"),
                        }
                    }
                }
            });
        }
    });
    Arc::try_unwrap(samples).ok().expect("clients joined").into_inner().unwrap()
}

fn report_wave(name: &str, samples: &[Sample], wall_secs: f64) -> serde::Value {
    use serde::Serialize;
    let mut latencies: Vec<u64> = samples.iter().map(|s| s.latency_ms).collect();
    latencies.sort_unstable();
    let (p50, p90, p99) =
        (percentile(&latencies, 50.0), percentile(&latencies, 90.0), percentile(&latencies, 99.0));
    let place_ms: f64 = samples.iter().map(|s| s.place_ns as f64 / 1e6).sum();
    let schedule_ms: f64 = samples.iter().map(|s| s.schedule_ns as f64 / 1e6).sum();
    println!(
        "{name:<6} {:>4} requests in {wall_secs:>6.3} s ({:>7.1} req/s)   \
         p50 {p50:>3} ms  p90 {p90:>3} ms  p99 {p99:>3} ms   \
         phases: place {place_ms:>8.1} ms, schedule {schedule_ms:>7.1} ms",
        samples.len(),
        samples.len() as f64 / wall_secs,
    );
    serde::Value::Object(vec![
        ("requests".into(), samples.len().to_value()),
        ("wall_secs".into(), wall_secs.to_value()),
        ("p50_ms".into(), p50.to_value()),
        ("p90_ms".into(), p90.to_value()),
        ("p99_ms".into(), p99.to_value()),
        ("place_ms_total".into(), place_ms.to_value()),
        ("schedule_ms_total".into(), schedule_ms.to_value()),
    ])
}

fn main() {
    use serde::Serialize;
    print_header(
        "Serve load — corpus replay against the compile service",
        "(repo extension; load-tests the zac-serve worker pool and shared cache)",
    );

    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/corpus");
    let mut files: Vec<_> = std::fs::read_dir(&dir)
        .expect("bundled corpus directory")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x.eq_ignore_ascii_case("qasm")))
        .collect();
    files.sort();
    let corpus: Arc<Vec<(String, String)>> = Arc::new(
        files
            .iter()
            .map(|p| {
                let stem = p.file_stem().unwrap().to_string_lossy().into_owned();
                (stem, std::fs::read_to_string(p).expect("corpus file readable"))
            })
            .collect(),
    );

    let clients = env_usize("ZAC_LOAD_CONCURRENCY", 4);
    let requests = env_usize("ZAC_LOAD_REQUESTS", 4);
    let service = Arc::new(Service::new(ServiceConfig::default()));
    println!(
        "corpus: {} circuits × {} clients × {} requests per wave\n",
        corpus.len(),
        clients,
        requests
    );

    let t0 = Instant::now();
    let cold = wave(&service, &corpus, "cold", clients, requests);
    let cold_secs = t0.elapsed().as_secs_f64();
    let cold_stats = service.cache().stats();

    let t1 = Instant::now();
    let warm = wave(&service, &corpus, "warm", clients, requests);
    let warm_secs = t1.elapsed().as_secs_f64();
    let stats = service.cache().stats();

    // The warm wave performs one lookup per (request, circuit); its hits
    // are the delta over the cold wave.
    let warm_lookups = stats.lookups() - cold_stats.lookups();
    let warm_hits = (stats.hits + stats.disk_hits) - (cold_stats.hits + cold_stats.disk_hits);
    let warm_hit_rate = warm_hits as f64 / warm_lookups as f64;

    let cold_json = report_wave("cold", &cold, cold_secs);
    let warm_json = report_wave("warm", &warm, warm_secs);
    println!(
        "\nwarm wave: {warm_hits}/{warm_lookups} lookups served from cache \
         (hit rate {:.1}%)",
        warm_hit_rate * 100.0
    );
    assert!(
        warm_hit_rate >= 0.9,
        "warm wave must be served from cache (hit rate {warm_hit_rate:.3})"
    );

    if let Ok(path) = std::env::var("ZAC_SERVE_LOAD_OUT") {
        let report = serde::Value::Object(vec![
            ("concurrency".into(), clients.to_value()),
            ("requests_per_client".into(), requests.to_value()),
            ("corpus_circuits".into(), corpus.len().to_value()),
            ("cold".into(), cold_json),
            ("warm".into(), warm_json),
            ("warm_hit_rate".into(), warm_hit_rate.to_value()),
        ]);
        std::fs::write(&path, serde_json::to_string(&report).expect("report serializes"))
            .expect("write load report");
        println!("report written to {path}");
    }
}
