//! Architecture exploration: how entanglement-zone size affects fidelity.
//!
//! Extends the paper's Sec. VII-H direction: for a fixed storage zone, sweep
//! the number of Rydberg sites. Too few sites force stage splitting (extra
//! exposures and trips); beyond the circuit's parallelism, extra sites only
//! lengthen movements. The sweet spot tracks each workload's max stage width.

use zac_arch::Architecture;
use zac_bench::print_header;
use zac_circuit::{bench_circuits, preprocess};
use zac_core::{Zac, ZacConfig};

fn main() {
    print_header(
        "Zone-size sweep (extension of Sec. VII-H)",
        "fidelity peaks once the zone covers the circuit's max parallel stage",
    );
    let workloads = [preprocess(&bench_circuits::ising(42)), preprocess(&bench_circuits::qft(18))];

    for staged in &workloads {
        println!("\n{} (max stage width {}):", staged.name, staged.max_parallelism());
        println!(
            "{:>14}{:>10}{:>14}{:>14}{:>12}",
            "sites", "stages", "fidelity", "duration", "transfers"
        );
        for (rows, cols) in [(1usize, 10usize), (2, 10), (3, 10), (4, 12), (7, 20)] {
            let arch = Architecture::zoned_custom(3, 40, rows, cols);
            let mut cfg = ZacConfig::full();
            cfg.placement.sa_iterations = 300;
            match Zac::with_config(arch, cfg).compile_staged(staged) {
                Ok(out) => {
                    let stages = out.plan.stages.len();
                    println!(
                        "{:>10}x{:<3}{stages:>10}{:>14.4}{:>12.2}ms{:>12}",
                        rows,
                        cols,
                        out.total_fidelity(),
                        out.summary.duration_us / 1000.0,
                        out.summary.n_tran
                    );
                }
                Err(e) => println!("{rows:>10}x{cols:<3}  failed: {e}"),
            }
        }
    }
}
