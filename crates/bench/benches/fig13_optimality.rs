//! Fig. 13: optimality analysis against idealized upper bounds.
//!
//! Paper claims: ZAC is within 3% of perfect movement, 7% of perfect
//! placement, and 10% of perfect reuse (geomean fidelity gaps).

use zac_arch::Architecture;
use zac_bench::{geomean, print_header};
use zac_circuit::{bench_circuits, preprocess};
use zac_core::{ideal_summary, IdealLevel, Zac, ZacConfig};
use zac_fidelity::{evaluate_neutral_atom, NeutralAtomParams};

fn main() {
    print_header(
        "Fig. 13 — Optimality analysis",
        "ZAC gaps: 3% vs perfect movement, 7% vs perfect placement, \
         10% vs perfect reuse",
    );
    let params = NeutralAtomParams::reference();
    let arch = Architecture::reference();

    println!(
        "{:<22}{:>16}{:>16}{:>16}{:>16}",
        "circuit", "PerfectReuse", "PerfectPlace", "PerfectMove", "ZAC"
    );
    let mut zac_f = Vec::new();
    let mut move_f = Vec::new();
    let mut place_f = Vec::new();
    let mut reuse_f = Vec::new();
    for entry in bench_circuits::paper_suite() {
        let staged = preprocess(&entry.circuit);
        let zac = Zac::with_config(arch.clone(), ZacConfig::full());
        let Ok(out) = zac.compile_staged(&staged) else {
            continue;
        };
        // Ideal models operate on the auto-split staging ZAC itself used.
        let split = if staged.max_parallelism() > arch.num_sites() {
            staged.with_max_stage_width(arch.num_sites())
        } else {
            staged.clone()
        };
        let fid = |level| {
            let s = ideal_summary(&arch, &split, &out.plan, &params, level);
            evaluate_neutral_atom(&s, &params).total()
        };
        let fm = fid(IdealLevel::PerfectMovement);
        let fp = fid(IdealLevel::PerfectPlacement);
        let fr = fid(IdealLevel::PerfectReuse);
        println!(
            "{:<22}{fr:>16.4}{fp:>16.4}{fm:>16.4}{:>16.4}",
            entry.circuit.name(),
            out.total_fidelity()
        );
        zac_f.push(out.total_fidelity());
        move_f.push(fm);
        place_f.push(fp);
        reuse_f.push(fr);
    }

    let (z, m, p, r) = (geomean(&zac_f), geomean(&move_f), geomean(&place_f), geomean(&reuse_f));
    println!("{:<22}{r:>16.4}{p:>16.4}{m:>16.4}{z:>16.4}", "GMean");
    println!("\noptimality gaps (paper in parentheses):");
    println!("  vs perfect movement:  {:.1}% (3%)", (1.0 - z / m) * 100.0);
    println!("  vs perfect placement: {:.1}% (7%)", (1.0 - z / p) * 100.0);
    println!("  vs perfect reuse:     {:.1}% (10%)", (1.0 - z / r) * 100.0);
}
