//! Criterion microbenchmarks for the core combinatorial routines: bipartite
//! matching (Hopcroft–Karp), the assignment solver (Jonker–Volgenant),
//! maximal-independent-set partitioning, and the SA placement inner loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use zac_arch::Architecture;
use zac_circuit::{bench_circuits, preprocess};
use zac_graph::mis::partition_into_independent_sets;
use zac_graph::{max_bipartite_matching, min_weight_full_matching, CostMatrix};
use zac_place::sa_initial_placement;

fn bench_hopcroft_karp(c: &mut Criterion) {
    let mut group = c.benchmark_group("hopcroft_karp");
    for &n in &[32usize, 128, 512] {
        let mut rng = StdRng::seed_from_u64(7);
        let adj: Vec<Vec<usize>> =
            (0..n).map(|_| (0..8).map(|_| rng.gen_range(0..n)).collect()).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &adj, |b, adj| {
            b.iter(|| max_bipartite_matching(adj, n));
        });
    }
    group.finish();
}

fn bench_assignment(c: &mut Criterion) {
    let mut group = c.benchmark_group("jonker_volgenant");
    for &n in &[16usize, 64, 128] {
        let mut rng = StdRng::seed_from_u64(13);
        let mut cost = CostMatrix::new(n, n + 16, 0.0);
        for r in 0..n {
            for col in 0..n + 16 {
                cost.set(r, col, rng.gen_range(0.0..100.0));
            }
        }
        group.bench_with_input(BenchmarkId::from_parameter(n), &cost, |b, cost| {
            b.iter(|| min_weight_full_matching(cost).unwrap());
        });
    }
    group.finish();
}

fn bench_mis(c: &mut Criterion) {
    let mut group = c.benchmark_group("mis_partition");
    for &n in &[32usize, 128] {
        let mut rng = StdRng::seed_from_u64(23);
        let adj: Vec<Vec<usize>> =
            (0..n).map(|_| (0..n / 8).map(|_| rng.gen_range(0..n)).collect()).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &adj, |b, adj| {
            b.iter(|| partition_into_independent_sets(adj));
        });
    }
    group.finish();
}

fn bench_sa(c: &mut Criterion) {
    let arch = Architecture::reference();
    let staged = preprocess(&bench_circuits::qft(12));
    c.bench_function("sa_initial_placement_1000_iters", |b| {
        b.iter(|| sa_initial_placement(&arch, &staged, 1000, 5).unwrap());
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_hopcroft_karp, bench_assignment, bench_mis, bench_sa
}
criterion_main!(benches);
