//! Fault-tolerant quantum computing support for ZAC (paper Sec. VIII).
//!
//! * [`pauli`] — phaseless Pauli strings with Clifford conjugation and GF(2)
//!   stabilizer-group membership, the verification substrate;
//! * [`code832`] — the [[8,3,2]] cube color code: stabilizers, logical
//!   operators, and a *machine-checked proof* (by Pauli propagation) that
//!   qubit-wise CNOT between blocks acts as transversal logical CNOT;
//! * [`hiqp`] — the hypercube IQP workload: 128 blocks / 384 logical qubits
//!   with doubling-stride CNOT layers, compiled at block level with ZAC on
//!   the 3×5-site logical architecture (35 Rydberg stages at paper scale).
//!
//! # Example
//!
//! ```
//! use zac_ftqc::hiqp::hiqp_block_circuit;
//! let c = hiqp_block_circuit(128);
//! assert_eq!(c.num_2q_gates(), 448); // the paper's transversal gate count
//! ```

pub mod code832;
pub mod hiqp;
pub mod pauli;

pub use code832::Code832;
pub use hiqp::{compile_hiqp, expand_to_physical, hiqp_block_circuit, HiqpResult};
pub use pauli::{Pauli, StabilizerGroup};
