//! The [[8,3,2]] color code (paper Sec. VIII, Fig. 16a).
//!
//! Eight physical qubits on the vertices of a cube encode three logical
//! qubits at distance 2 (Vasmer & Kubica). The stabilizer group is generated
//! by X on all eight vertices plus Z on four independent faces; logical X
//! operators are X on the three coordinate faces through vertex 0, logical Z
//! operators are Z on the three edges through vertex 0.
//!
//! Transversal gates: physical T† on all eight qubits realizes a logical
//! CCZ·CZ·Z combination ("in-block gate"), and qubit-wise CNOT between two
//! blocks realizes logical CNOTs on corresponding logical qubits
//! ("inter-block gate"). The latter is *verified here* by Pauli propagation.

use crate::pauli::{Pauli, StabilizerGroup};

/// Number of physical qubits per block.
pub const PHYSICAL_QUBITS: usize = 8;
/// Number of logical qubits per block.
pub const LOGICAL_QUBITS: usize = 3;
/// Code distance.
pub const DISTANCE: usize = 2;
/// Physical block footprint (rows, cols) on the atom array (paper: 2×4).
pub const BLOCK_SHAPE: (usize, usize) = (2, 4);

/// Vertices of the cube, indexed by their 3-bit coordinates (x, y, z).
fn face(axis: usize, value: usize) -> Vec<usize> {
    (0..8).filter(|v| (v >> axis) & 1 == value).collect()
}

/// The [[8,3,2]] code block.
#[derive(Debug, Clone)]
pub struct Code832 {
    stabilizers: StabilizerGroup,
    logical_x: [Pauli; 3],
    logical_z: [Pauli; 3],
}

impl Default for Code832 {
    fn default() -> Self {
        Self::new()
    }
}

impl Code832 {
    /// Constructs the code with its standard generators.
    pub fn new() -> Self {
        let sx = Pauli::xs(&[0, 1, 2, 3, 4, 5, 6, 7]);
        let sz: Vec<Pauli> = [
            face(0, 0), // x = 0 face
            face(1, 0), // y = 0 face
            face(2, 0), // z = 0 face
            face(2, 1), // z = 1 face
        ]
        .iter()
        .map(|f| Pauli::zs(f))
        .collect();
        let mut gens = vec![sx];
        gens.extend(sz);
        let stabilizers = StabilizerGroup::new(gens);

        let logical_x = [Pauli::xs(&face(0, 0)), Pauli::xs(&face(1, 0)), Pauli::xs(&face(2, 0))];
        // Edges through vertex 0 along each axis.
        let logical_z = [
            Pauli::zs(&[0, 1]), // x edge
            Pauli::zs(&[0, 2]), // y edge
            Pauli::zs(&[0, 4]), // z edge
        ];
        Self { stabilizers, logical_x, logical_z }
    }

    /// The stabilizer group.
    pub fn stabilizers(&self) -> &StabilizerGroup {
        &self.stabilizers
    }

    /// Logical X operator of logical qubit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 3`.
    pub fn logical_x(&self, i: usize) -> Pauli {
        self.logical_x[i]
    }

    /// Logical Z operator of logical qubit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 3`.
    pub fn logical_z(&self, i: usize) -> Pauli {
        self.logical_z[i]
    }

    /// The qubit-wise CNOT list of the transversal inter-block CNOT, acting
    /// on a 16-qubit register: block A on qubits `0..8`, block B on `8..16`.
    pub fn transversal_cnot_pairs() -> Vec<(usize, usize)> {
        (0..PHYSICAL_QUBITS).map(|q| (q, q + PHYSICAL_QUBITS)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn propagate(p: Pauli, pairs: &[(usize, usize)]) -> Pauli {
        pairs.iter().fold(p, |acc, &(c, t)| acc.through_cnot(c, t))
    }

    #[test]
    fn parameters() {
        let code = Code832::new();
        assert_eq!(code.stabilizers().rank(), PHYSICAL_QUBITS - LOGICAL_QUBITS);
        assert_eq!(PHYSICAL_QUBITS, 8);
        assert_eq!(LOGICAL_QUBITS, 3);
        assert_eq!(DISTANCE, 2);
    }

    #[test]
    fn stabilizers_commute_pairwise() {
        let code = Code832::new();
        let gens = code.stabilizers().generators();
        for (i, a) in gens.iter().enumerate() {
            for b in &gens[i + 1..] {
                assert!(a.commutes_with(*b));
            }
        }
    }

    #[test]
    fn logicals_commute_with_stabilizers() {
        let code = Code832::new();
        for i in 0..3 {
            assert!(code.stabilizers().commutes_with(code.logical_x(i)));
            assert!(code.stabilizers().commutes_with(code.logical_z(i)));
        }
    }

    #[test]
    fn logicals_have_canonical_commutation() {
        let code = Code832::new();
        for i in 0..3 {
            for j in 0..3 {
                let commute = code.logical_x(i).commutes_with(code.logical_z(j));
                assert_eq!(commute, i != j, "X̄{i} vs Z̄{j}");
            }
        }
    }

    #[test]
    fn logicals_are_not_stabilizers() {
        let code = Code832::new();
        for i in 0..3 {
            assert!(!code.stabilizers().contains(code.logical_x(i)));
            assert!(!code.stabilizers().contains(code.logical_z(i)));
        }
    }

    #[test]
    fn distance_two_logical_z() {
        let code = Code832::new();
        for i in 0..3 {
            assert_eq!(code.logical_z(i).weight(), 2);
        }
    }

    /// The headline FTQC property: qubit-wise CNOT between two blocks
    /// (a) preserves the two-block stabilizer group and (b) acts as logical
    /// CNOT on each corresponding logical pair.
    #[test]
    fn transversal_cnot_is_logical_cnot() {
        let code = Code832::new();
        let pairs = Code832::transversal_cnot_pairs();

        // Two-block stabilizer group: block A generators + shifted block B.
        let mut gens: Vec<Pauli> = code.stabilizers().generators().to_vec();
        gens.extend(code.stabilizers().generators().iter().map(|g| g.shifted(8)));
        let group = StabilizerGroup::new(gens.clone());

        // (a) stabilizer preservation.
        for g in &gens {
            let image = propagate(*g, &pairs);
            assert!(group.contains(image), "stabilizer image left the group");
        }

        // (b) logical action: X̄_i^A → X̄_i^A X̄_i^B and Z̄_i^B → Z̄_i^A Z̄_i^B,
        // modulo stabilizers.
        for i in 0..3 {
            let xa = code.logical_x(i);
            let image = propagate(xa, &pairs);
            let expect = xa.mul(code.logical_x(i).shifted(8));
            assert!(
                group.contains(image.mul(expect)),
                "X̄{i} image differs from logical-CNOT action"
            );

            let zb = code.logical_z(i).shifted(8);
            let image = propagate(zb, &pairs);
            let expect = code.logical_z(i).mul(zb);
            assert!(
                group.contains(image.mul(expect)),
                "Z̄{i} image differs from logical-CNOT action"
            );

            // Control-side Z and target-side X are untouched (mod stabilizers).
            let za = code.logical_z(i);
            assert!(group.contains(propagate(za, &pairs).mul(za)));
            let xb = code.logical_x(i).shifted(8);
            assert!(group.contains(propagate(xb, &pairs).mul(xb)));
        }
    }
}
