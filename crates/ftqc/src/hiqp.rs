//! Hypercube IQP circuits and their block-level compilation with ZAC
//! (paper Sec. VIII, Fig. 16b).
//!
//! The workload is a scaled-up version of the 48-qubit experiment of
//! Bluvstein et al.: `B` [[8,3,2]] blocks (`3·B` logical qubits) run eight
//! in-block gate layers interleaved with seven transversal-CNOT layers whose
//! stride doubles each time, generating hypercube connectivity. ZAC treats
//! each *block* as one movable unit and compiles the block movements; the
//! physical qubits of a block ride along in the same rearrangement job.

use crate::code832::{Code832, LOGICAL_QUBITS};
use zac_arch::Architecture;
use zac_circuit::{preprocess, Circuit};
use zac_core::{Zac, ZacConfig, ZacError, ZacOutput};

/// Builds the block-level hIQP circuit: each circuit "qubit" is one
/// [[8,3,2]] block.
///
/// In-block gate layers appear as one 1Q gate per block (the transversal T†
/// wall); CNOT layers connect blocks `(i, i+2^k)` for every `i` whose k-th
/// bit is 0, with the stride doubling layer by layer.
///
/// # Panics
///
/// Panics unless `num_blocks` is a power of two with at least 2 blocks.
pub fn hiqp_block_circuit(num_blocks: usize) -> Circuit {
    assert!(
        num_blocks >= 2 && num_blocks.is_power_of_two(),
        "hIQP needs a power-of-two block count"
    );
    let layers = num_blocks.trailing_zeros() as usize; // log2(B) CNOT layers
    let mut c = Circuit::new(format!("hiqp_b{num_blocks}"), num_blocks);
    // Initial in-block layer.
    for b in 0..num_blocks {
        c.rz(std::f64::consts::FRAC_PI_4, b);
    }
    for k in 0..layers {
        let stride = 1usize << k;
        for i in 0..num_blocks {
            if i & stride == 0 {
                c.cx(i, i + stride);
            }
        }
        // In-block layer after every CNOT layer.
        for b in 0..num_blocks {
            c.rz(std::f64::consts::FRAC_PI_4, b);
        }
    }
    c
}

/// Result of compiling the hIQP workload with ZAC.
#[derive(Debug, Clone)]
pub struct HiqpResult {
    /// The block-level compilation output (one "qubit" = one block).
    pub output: ZacOutput,
    /// Number of code blocks.
    pub num_blocks: usize,
    /// Logical qubit count (3 per block).
    pub logical_qubits: usize,
    /// Transversal inter-block gates in the workload.
    pub transversal_gates: usize,
    /// Rydberg stages in the compiled schedule.
    pub rydberg_stages: usize,
    /// Physical circuit duration in milliseconds.
    pub duration_ms: f64,
}

/// Compiles the `num_blocks`-block hIQP circuit onto the logical-level
/// architecture (3×5 block sites, paper Sec. VIII).
///
/// CNOT layers have `B/2` parallel gates; with 15 logical sites the layers
/// split into ⌈(B/2)/15⌉ exposures each — 35 stages for B = 128.
///
/// # Errors
///
/// Propagates [`ZacError`] from the underlying compilation.
///
/// # Panics
///
/// Panics unless `num_blocks` is a power of two with at least 2 blocks.
pub fn compile_hiqp(num_blocks: usize) -> Result<HiqpResult, ZacError> {
    let arch = Architecture::ftqc_logical();
    let circuit = hiqp_block_circuit(num_blocks);
    let transversal_gates = circuit.num_2q_gates();
    let staged = preprocess(&circuit);
    let mut cfg = ZacConfig::full();
    cfg.placement.sa_iterations = 300;
    let zac = Zac::with_config(arch, cfg);
    let output = zac.compile_staged(&staged)?;
    let rydberg_stages = output
        .program
        .instructions
        .iter()
        .filter(|i| matches!(i, zac_zair::Instruction::Rydberg { .. }))
        .count();
    Ok(HiqpResult {
        num_blocks,
        logical_qubits: LOGICAL_QUBITS * num_blocks,
        transversal_gates,
        rydberg_stages,
        duration_ms: output.summary.duration_us / 1000.0,
        output,
    })
}

/// Expands a block-level circuit into the physical-qubit circuit: each
/// block-level CX becomes the 8 transversal CNOTs of [`Code832`]; each
/// block-level 1Q gate becomes the 8-qubit T† wall.
pub fn expand_to_physical(block_circuit: &Circuit) -> Circuit {
    use zac_circuit::gate::Gate;
    let n_phys = block_circuit.num_qubits() * crate::code832::PHYSICAL_QUBITS;
    let mut c = Circuit::new(format!("{}_physical", block_circuit.name()), n_phys);
    let base = |b: usize| b * crate::code832::PHYSICAL_QUBITS;
    for g in block_circuit.gates() {
        match *g {
            Gate::OneQ { qubit, .. } => {
                for q in 0..crate::code832::PHYSICAL_QUBITS {
                    c.tdg(base(qubit) + q);
                }
            }
            Gate::TwoQ { a, b, .. } => {
                for (qa, qb) in Code832::transversal_cnot_pairs() {
                    c.cx(base(a) + qa, base(b) + qb - crate::code832::PHYSICAL_QUBITS);
                }
            }
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_circuit_shape_128() {
        let c = hiqp_block_circuit(128);
        // 7 CNOT layers × 64 gates = 448 transversal gates (paper).
        assert_eq!(c.num_2q_gates(), 448);
        // 8 in-block layers × 128 blocks.
        assert_eq!(c.num_1q_gates(), 8 * 128);
    }

    #[test]
    fn stride_doubles_each_layer() {
        let c = hiqp_block_circuit(8);
        let pairs = c.interaction_pairs();
        // Layer 1: stride 1 → (0,1); layer 2: stride 2 → (0,2); layer 3: (0,4).
        assert!(pairs.contains(&(0, 1)));
        assert!(pairs.contains(&(0, 2)));
        assert!(pairs.contains(&(0, 4)));
        assert_eq!(pairs.len(), 3 * 4);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn non_power_of_two_rejected() {
        hiqp_block_circuit(6);
    }

    #[test]
    fn physical_expansion_counts() {
        let c = hiqp_block_circuit(4);
        let phys = expand_to_physical(&c);
        assert_eq!(phys.num_qubits(), 32);
        assert_eq!(phys.num_2q_gates(), c.num_2q_gates() * 8);
        assert_eq!(phys.num_1q_gates(), c.num_1q_gates() * 8);
    }

    #[test]
    fn compile_small_hiqp() {
        let r = compile_hiqp(16).unwrap();
        assert_eq!(r.logical_qubits, 48);
        assert_eq!(r.transversal_gates, 4 * 8);
        assert!(r.rydberg_stages >= 4, "stages {}", r.rydberg_stages);
        assert!(r.duration_ms > 0.0);
        assert_eq!(r.output.summary.n_exc, 0);
    }

    #[test]
    fn compile_paper_scale_hiqp_splits_layers() {
        let r = compile_hiqp(128).unwrap();
        // 64-gate layers on 15 sites → 5 exposures per layer, 7 layers = 35.
        assert_eq!(r.rydberg_stages, 35);
        assert_eq!(r.logical_qubits, 384);
        assert_eq!(r.transversal_gates, 448);
        // Paper: 117.847 ms; the shape (order of 100 ms) must hold.
        assert!(r.duration_ms > 20.0 && r.duration_ms < 500.0, "duration {} ms", r.duration_ms);
    }
}
