//! Hardware parameter sets (paper Table I and Sec. VII-B).

/// Neutral-atom hardware parameters (Bluvstein et al. 2024/2022).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NeutralAtomParams {
    /// CZ gate fidelity (`f2` = 99.5%).
    pub f_2q: f64,
    /// 1Q gate fidelity (`f1` = 99.97%).
    pub f_1q: f64,
    /// Fidelity of an idle qubit excited by the Rydberg laser
    /// (`f_exc` = 99.75%).
    pub f_exc: f64,
    /// Atom-transfer fidelity (`f_tran` = 99.9%).
    pub f_tran: f64,
    /// CZ duration in µs (`T_Ryd` = 0.36 µs).
    pub t_2q_us: f64,
    /// 1Q gate duration in µs (`T_1q` = 52 µs, conservative pulse budget).
    pub t_1q_us: f64,
    /// Atom-transfer duration in µs (`T_tran` = 15 µs).
    pub t_tran_us: f64,
    /// Coherence time in µs (`T2` = 1.5 s).
    pub t2_us: f64,
}

impl NeutralAtomParams {
    /// The reference parameters of Table I ("Neutral Atom" row).
    pub const fn reference() -> Self {
        Self {
            f_2q: 0.995,
            f_1q: 0.9997,
            f_exc: 0.9975,
            f_tran: 0.999,
            t_2q_us: 0.36,
            t_1q_us: 52.0,
            t_tran_us: 15.0,
            t2_us: 1.5e6,
        }
    }
}

impl Default for NeutralAtomParams {
    fn default() -> Self {
        Self::reference()
    }
}

/// Superconducting-qubit hardware parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SuperconductingParams {
    /// 2Q gate fidelity.
    pub f_2q: f64,
    /// 1Q gate fidelity.
    pub f_1q: f64,
    /// 2Q gate duration (µs).
    pub t_2q_us: f64,
    /// 1Q gate duration (µs).
    pub t_1q_us: f64,
    /// Coherence time T2 (µs).
    pub t2_us: f64,
}

impl SuperconductingParams {
    /// IBM Heron (ibm_torino) parameters: Table I "SC Heron" row.
    pub const fn heron() -> Self {
        Self { f_2q: 0.999, f_1q: 0.9997, t_2q_us: 0.068, t_1q_us: 0.025, t2_us: 311.0 }
    }

    /// Google Sycamore-style grid parameters: Table I "SC Grid" row.
    pub const fn grid() -> Self {
        Self { f_2q: 0.999, f_1q: 0.9997, t_2q_us: 0.042, t_1q_us: 0.025, t2_us: 89.0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_values() {
        let na = NeutralAtomParams::reference();
        assert_eq!(na.f_2q, 0.995);
        assert_eq!(na.f_1q, 0.9997);
        assert_eq!(na.t_1q_us, 52.0);
        assert_eq!(na.t_2q_us, 0.36);
        assert_eq!(na.t2_us, 1.5e6);
        let heron = SuperconductingParams::heron();
        assert_eq!(heron.t2_us, 311.0);
        assert_eq!(heron.t_2q_us, 0.068);
        let grid = SuperconductingParams::grid();
        assert_eq!(grid.t2_us, 89.0);
        assert_eq!(grid.t_2q_us, 0.042);
    }

    #[test]
    fn default_is_reference() {
        assert_eq!(NeutralAtomParams::default(), NeutralAtomParams::reference());
    }
}
