//! Fidelity and timing models for the ZAC evaluation (paper Sec. VII-B).
//!
//! * [`params`] — the hardware parameter sets of Table I: neutral atom,
//!   IBM Heron (heavy-hex) and Google-style grid superconducting machines.
//! * [`model`] — the product fidelity model
//!   `f = f1^g1 · f2^g2 · f_exc^Nexc · f_tran^Ntran · Π(1 − t_q/T2)` with the
//!   paper's Fig. 9 component grouping, plus geometric-mean helpers used by
//!   the experiment harness.
//!
//! Neutral-atom compilers feed a ZAIR [`zac_zair::Analysis`] into
//! [`ExecutionSummary::from_analysis`]; superconducting baselines construct
//! the summary directly.

pub mod model;
pub mod monte_carlo;
pub mod params;

pub use model::{
    decoherence_product, evaluate_neutral_atom, evaluate_superconducting, geometric_mean,
    ExecutionSummary, FidelityReport,
};
pub use params::{NeutralAtomParams, SuperconductingParams};
