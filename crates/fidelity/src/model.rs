//! The circuit fidelity model (paper Sec. VII-B).
//!
//! Total fidelity is the product of four independent components:
//!
//! ```text
//! f = f1^g1 · [f2^g2 · f_exc^N_exc] · f_tran^N_tran · Π_q (1 − t_q/T2)
//!     \_1Q_/  \_______2Q_________/   \_transfer___/   \_decoherence_/
//! ```
//!
//! where `t_q` is qubit `q`'s idle time — the time it spends neither gated
//! nor held by a tweezer transfer (movement counts as idling). The grouping
//! matches the paper's Fig. 9 breakdown: idle-qubit Rydberg excitations are
//! folded into the 2Q component.

use crate::params::{NeutralAtomParams, SuperconductingParams};
use zac_zair::Analysis;

/// Everything the fidelity model needs to know about one compiled execution.
///
/// Neutral-atom compilers derive this from a ZAIR [`Analysis`] via
/// [`ExecutionSummary::from_analysis`]; the superconducting baselines build
/// it directly from their routed circuits.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionSummary {
    /// Circuit name.
    pub name: String,
    /// Number of qubits.
    pub num_qubits: usize,
    /// Total execution time (µs).
    pub duration_us: f64,
    /// Executed 1Q gates.
    pub g1: usize,
    /// Executed 2Q gates.
    pub g2: usize,
    /// Idle qubits excited by a Rydberg exposure.
    pub n_exc: usize,
    /// Atom transfers.
    pub n_tran: usize,
    /// Per-qubit idle time (µs).
    pub idle_us: Vec<f64>,
}

impl ExecutionSummary {
    /// Builds a summary from a validated ZAIR analysis.
    pub fn from_analysis(name: impl Into<String>, analysis: &Analysis) -> Self {
        Self {
            name: name.into(),
            num_qubits: analysis.num_qubits,
            duration_us: analysis.total_duration_us,
            g1: analysis.g1,
            g2: analysis.g2,
            n_exc: analysis.n_exc,
            n_tran: analysis.n_tran,
            idle_us: analysis.idle_us(),
        }
    }
}

/// A fidelity estimate broken down into the paper's four components.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FidelityReport {
    /// `f1^g1`.
    pub one_q: f64,
    /// `f2^g2 · f_exc^N_exc` (excitations folded in, as in Fig. 9).
    pub two_q: f64,
    /// `f_tran^N_tran` (1.0 for platforms without atom transfer).
    pub transfer: f64,
    /// `Π_q (1 − t_q/T2)`, clamped at 0.
    pub decoherence: f64,
    /// Execution duration (µs).
    pub duration_us: f64,
}

impl FidelityReport {
    /// The total circuit fidelity: the product of all components.
    pub fn total(&self) -> f64 {
        self.one_q * self.two_q * self.transfer * self.decoherence
    }
}

/// Evaluates the fidelity of a neutral-atom execution.
///
/// # Example
///
/// ```
/// use zac_fidelity::{evaluate_neutral_atom, ExecutionSummary, NeutralAtomParams};
/// let summary = ExecutionSummary {
///     name: "demo".into(),
///     num_qubits: 2,
///     duration_us: 1000.0,
///     g1: 2, g2: 1, n_exc: 0, n_tran: 4,
///     idle_us: vec![900.0, 900.0],
/// };
/// let report = evaluate_neutral_atom(&summary, &NeutralAtomParams::reference());
/// assert!(report.total() > 0.98 && report.total() < 1.0);
/// ```
pub fn evaluate_neutral_atom(
    summary: &ExecutionSummary,
    params: &NeutralAtomParams,
) -> FidelityReport {
    FidelityReport {
        one_q: params.f_1q.powi(summary.g1 as i32),
        two_q: params.f_2q.powi(summary.g2 as i32) * params.f_exc.powi(summary.n_exc as i32),
        transfer: params.f_tran.powi(summary.n_tran as i32),
        decoherence: decoherence_product(&summary.idle_us, params.t2_us),
        duration_us: summary.duration_us,
    }
}

/// Evaluates the fidelity of a superconducting execution (no atom transfer).
pub fn evaluate_superconducting(
    summary: &ExecutionSummary,
    params: &SuperconductingParams,
) -> FidelityReport {
    FidelityReport {
        one_q: params.f_1q.powi(summary.g1 as i32),
        two_q: params.f_2q.powi(summary.g2 as i32),
        transfer: 1.0,
        decoherence: decoherence_product(&summary.idle_us, params.t2_us),
        duration_us: summary.duration_us,
    }
}

/// `Π_q max(0, 1 − t_q/T2)`: the linear decoherence model.
pub fn decoherence_product(idle_us: &[f64], t2_us: f64) -> f64 {
    idle_us.iter().map(|t| (1.0 - t / t2_us).max(0.0)).product()
}

/// Geometric mean of positive values; 0 if any value is 0.
///
/// # Panics
///
/// Panics if `values` is empty.
pub fn geometric_mean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geometric mean of empty slice");
    if values.iter().any(|&v| v <= 0.0) {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Hand-written JSON impls (the in-tree serde stand-in has no derive).
/// `zac-cache` persists cache entries through these; field names are part
/// of the on-disk cache format.
mod json {
    use super::*;

    serde::impl_serde_struct!(ExecutionSummary {
        name,
        num_qubits,
        duration_us,
        g1,
        g2,
        n_exc,
        n_tran,
        idle_us,
    });

    serde::impl_serde_struct!(FidelityReport { one_q, two_q, transfer, decoherence, duration_us });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(
        g1: usize,
        g2: usize,
        n_exc: usize,
        n_tran: usize,
        idle: Vec<f64>,
    ) -> ExecutionSummary {
        ExecutionSummary {
            name: "t".into(),
            num_qubits: idle.len(),
            duration_us: 1000.0,
            g1,
            g2,
            n_exc,
            n_tran,
            idle_us: idle,
        }
    }

    #[test]
    fn perfect_execution_has_unit_fidelity() {
        let s = summary(0, 0, 0, 0, vec![0.0, 0.0]);
        let r = evaluate_neutral_atom(&s, &NeutralAtomParams::reference());
        assert_eq!(r.total(), 1.0);
    }

    #[test]
    fn components_multiply() {
        let s = summary(3, 2, 1, 4, vec![1000.0, 500.0]);
        let p = NeutralAtomParams::reference();
        let r = evaluate_neutral_atom(&s, &p);
        let expect_1q = p.f_1q.powi(3);
        let expect_2q = p.f_2q.powi(2) * p.f_exc;
        let expect_tr = p.f_tran.powi(4);
        let expect_de = (1.0 - 1000.0 / p.t2_us) * (1.0 - 500.0 / p.t2_us);
        assert!((r.one_q - expect_1q).abs() < 1e-12);
        assert!((r.two_q - expect_2q).abs() < 1e-12);
        assert!((r.transfer - expect_tr).abs() < 1e-12);
        assert!((r.decoherence - expect_de).abs() < 1e-12);
        assert!((r.total() - expect_1q * expect_2q * expect_tr * expect_de).abs() < 1e-12);
    }

    #[test]
    fn excitations_hurt_two_q_component() {
        let p = NeutralAtomParams::reference();
        let clean = evaluate_neutral_atom(&summary(0, 5, 0, 0, vec![0.0]), &p);
        let noisy = evaluate_neutral_atom(&summary(0, 5, 10, 0, vec![0.0]), &p);
        assert!(noisy.two_q < clean.two_q);
        assert!((noisy.two_q / clean.two_q - p.f_exc.powi(10)).abs() < 1e-12);
    }

    #[test]
    fn decoherence_clamps_at_zero() {
        let d = decoherence_product(&[2e6], 1.5e6); // idle > T2
        assert_eq!(d, 0.0);
    }

    #[test]
    fn sc_has_no_transfer_component() {
        let s = summary(2, 2, 0, 99, vec![10.0]);
        let r = evaluate_superconducting(&s, &SuperconductingParams::heron());
        assert_eq!(r.transfer, 1.0);
    }

    #[test]
    fn sc_grid_decoheres_faster_than_heron() {
        let s = summary(0, 0, 0, 0, vec![50.0, 50.0]);
        let h = evaluate_superconducting(&s, &SuperconductingParams::heron());
        let g = evaluate_superconducting(&s, &SuperconductingParams::grid());
        assert!(g.decoherence < h.decoherence);
    }

    #[test]
    fn summary_and_report_roundtrip_json() {
        let s = summary(3, 2, 1, 4, vec![12.5, 0.0]);
        let json = serde_json::to_string(&s).unwrap();
        let back: ExecutionSummary = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
        let r = evaluate_neutral_atom(&s, &NeutralAtomParams::reference());
        let json = serde_json::to_string(&r).unwrap();
        let back: FidelityReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn geometric_mean_basics() {
        assert!((geometric_mean(&[4.0, 1.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geometric_mean(&[0.5, 0.0]), 0.0);
        assert!((geometric_mean(&[7.0]) - 7.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty slice")]
    fn geometric_mean_empty_panics() {
        geometric_mean(&[]);
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn fidelity_always_in_unit_interval(
                g1 in 0usize..500, g2 in 0usize..500,
                n_exc in 0usize..500, n_tran in 0usize..2000,
                idle in proptest::collection::vec(0.0..1e7f64, 1..20)
            ) {
                let s = summary(g1, g2, n_exc, n_tran, idle);
                let r = evaluate_neutral_atom(&s, &NeutralAtomParams::reference());
                prop_assert!(r.total() >= 0.0 && r.total() <= 1.0);
                for c in [r.one_q, r.two_q, r.transfer, r.decoherence] {
                    prop_assert!((0.0..=1.0).contains(&c));
                }
            }

            #[test]
            fn more_errors_never_increase_fidelity(
                g2 in 0usize..100, extra in 1usize..50
            ) {
                let p = NeutralAtomParams::reference();
                let base = evaluate_neutral_atom(&summary(0, g2, 0, 0, vec![0.0]), &p);
                let worse = evaluate_neutral_atom(&summary(0, g2 + extra, 0, 0, vec![0.0]), &p);
                prop_assert!(worse.total() <= base.total());
            }
        }
    }
}
