//! Monte Carlo validation of the analytic fidelity model.
//!
//! The paper evaluates fidelity analytically (Sec. VII-B). This module
//! cross-checks that model by *sampling*: each shot draws independent
//! success events for every gate, excitation, transfer and per-qubit
//! decoherence window; the empirical success rate converges to the analytic
//! product. This gives the test-suite a second, independent implementation
//! of the error model to validate against, and gives users shot-level error
//! statistics (e.g. which error class kills a given circuit).

use crate::model::ExecutionSummary;
use crate::params::NeutralAtomParams;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Error-class attribution of failed shots.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ErrorBudget {
    /// Shots lost to 1Q gate errors.
    pub one_q: u64,
    /// Shots lost to CZ gate errors.
    pub two_q: u64,
    /// Shots lost to idle-qubit Rydberg excitation.
    pub excitation: u64,
    /// Shots lost to atom-transfer errors.
    pub transfer: u64,
    /// Shots lost to idling decoherence.
    pub decoherence: u64,
}

impl ErrorBudget {
    /// Total failed shots.
    pub fn total_failures(&self) -> u64 {
        self.one_q + self.two_q + self.excitation + self.transfer + self.decoherence
    }

    /// The dominant error class as a static label.
    pub fn dominant(&self) -> &'static str {
        let classes = [
            (self.one_q, "1Q"),
            (self.two_q, "2Q"),
            (self.excitation, "excitation"),
            (self.transfer, "transfer"),
            (self.decoherence, "decoherence"),
        ];
        classes.iter().max_by_key(|(n, _)| *n).map(|(_, l)| *l).unwrap_or("none")
    }
}

/// Result of a Monte Carlo fidelity estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonteCarloEstimate {
    /// Shots sampled.
    pub shots: u64,
    /// Shots with no error at all.
    pub successes: u64,
    /// Attribution of the *first* error in each failed shot.
    pub budget: ErrorBudget,
}

impl MonteCarloEstimate {
    /// Empirical fidelity `successes / shots`.
    pub fn fidelity(&self) -> f64 {
        self.successes as f64 / self.shots as f64
    }

    /// Standard error of the estimate: `sqrt(p(1-p)/shots)`.
    pub fn std_error(&self) -> f64 {
        let p = self.fidelity();
        (p * (1.0 - p) / self.shots as f64).sqrt()
    }
}

/// Samples the error model `shots` times; deterministic per `seed`.
///
/// Each shot draws, in order: every 1Q gate (success probability `f1`),
/// every 2Q gate (`f2`), every excitation event (`f_exc`), every transfer
/// (`f_tran`), and one decoherence trial per qubit (probability
/// `max(0, 1 − t_q/T2)`). The shot succeeds iff every draw succeeds — which
/// makes the success probability exactly the analytic product fidelity.
///
/// # Panics
///
/// Panics if `shots == 0`.
///
/// # Example
///
/// ```
/// use zac_fidelity::{monte_carlo::sample_fidelity, ExecutionSummary, NeutralAtomParams};
/// let s = ExecutionSummary {
///     name: "demo".into(), num_qubits: 2, duration_us: 1000.0,
///     g1: 4, g2: 2, n_exc: 1, n_tran: 8, idle_us: vec![800.0, 900.0],
/// };
/// let est = sample_fidelity(&s, &NeutralAtomParams::reference(), 2000, 7);
/// assert!(est.fidelity() > 0.9);
/// ```
pub fn sample_fidelity(
    summary: &ExecutionSummary,
    params: &NeutralAtomParams,
    shots: u64,
    seed: u64,
) -> MonteCarloEstimate {
    assert!(shots > 0, "at least one shot required");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut successes = 0u64;
    let mut budget = ErrorBudget::default();

    let decoherence_survive: Vec<f64> =
        summary.idle_us.iter().map(|t| (1.0 - t / params.t2_us).max(0.0)).collect();

    'shot: for _ in 0..shots {
        for _ in 0..summary.g1 {
            if rng.gen::<f64>() >= params.f_1q {
                budget.one_q += 1;
                continue 'shot;
            }
        }
        for _ in 0..summary.g2 {
            if rng.gen::<f64>() >= params.f_2q {
                budget.two_q += 1;
                continue 'shot;
            }
        }
        for _ in 0..summary.n_exc {
            if rng.gen::<f64>() >= params.f_exc {
                budget.excitation += 1;
                continue 'shot;
            }
        }
        for _ in 0..summary.n_tran {
            if rng.gen::<f64>() >= params.f_tran {
                budget.transfer += 1;
                continue 'shot;
            }
        }
        for &p in &decoherence_survive {
            if rng.gen::<f64>() >= p {
                budget.decoherence += 1;
                continue 'shot;
            }
        }
        successes += 1;
    }

    MonteCarloEstimate { shots, successes, budget }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::evaluate_neutral_atom;

    fn summary(
        g1: usize,
        g2: usize,
        n_exc: usize,
        n_tran: usize,
        idle: Vec<f64>,
    ) -> ExecutionSummary {
        ExecutionSummary {
            name: "mc".into(),
            num_qubits: idle.len(),
            duration_us: 1000.0,
            g1,
            g2,
            n_exc,
            n_tran,
            idle_us: idle,
        }
    }

    #[test]
    fn perfect_execution_always_succeeds() {
        let s = summary(0, 0, 0, 0, vec![0.0; 3]);
        let est = sample_fidelity(&s, &NeutralAtomParams::reference(), 500, 1);
        assert_eq!(est.successes, 500);
        assert_eq!(est.fidelity(), 1.0);
        assert_eq!(est.budget.total_failures(), 0);
    }

    #[test]
    fn estimate_matches_analytic_model_within_4_sigma() {
        let p = NeutralAtomParams::reference();
        let s = summary(30, 20, 10, 60, vec![2e4, 3e4, 1e4]);
        let analytic = evaluate_neutral_atom(&s, &p).total();
        let est = sample_fidelity(&s, &p, 40_000, 42);
        let sigma = est.std_error().max(1e-4);
        assert!(
            (est.fidelity() - analytic).abs() < 4.0 * sigma,
            "MC {} vs analytic {analytic} (sigma {sigma})",
            est.fidelity()
        );
    }

    #[test]
    fn failure_attribution_finds_the_dominant_class() {
        let p = NeutralAtomParams::reference();
        // Many excitations, nothing else: failures must be excitation.
        let s = summary(0, 0, 800, 0, vec![0.0]);
        let est = sample_fidelity(&s, &p, 4000, 3);
        assert!(est.budget.excitation > 0);
        assert_eq!(est.budget.dominant(), "excitation");
        assert_eq!(est.budget.two_q, 0);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let p = NeutralAtomParams::reference();
        let s = summary(5, 5, 5, 5, vec![1e3, 1e3]);
        let a = sample_fidelity(&s, &p, 1000, 9);
        let b = sample_fidelity(&s, &p, 1000, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn accounting_is_conserved() {
        let p = NeutralAtomParams::reference();
        let s = summary(50, 50, 50, 200, vec![5e5, 5e5]);
        let est = sample_fidelity(&s, &p, 5000, 11);
        assert_eq!(est.successes + est.budget.total_failures(), est.shots);
    }

    #[test]
    #[should_panic(expected = "at least one shot")]
    fn zero_shots_panics() {
        let s = summary(0, 0, 0, 0, vec![]);
        sample_fidelity(&s, &NeutralAtomParams::reference(), 0, 0);
    }
}
