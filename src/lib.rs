//! # zac — Reuse-Aware Compilation for Zoned Quantum Architectures
//!
//! Facade crate re-exporting the full ZAC reproduction workspace
//! (HPCA 2025, Lin/Tan/Cong). See the README for the architecture overview
//! and `DESIGN.md` for the per-experiment index.
//!
//! The typical entry point is [`zac_core::Zac`], either directly or through
//! the unified [`zac_core::Compiler`] trait all five compilers implement:
//!
//! ```
//! use zac::prelude::*;
//!
//! let arch = Architecture::reference();
//! let circuit = bench_circuits::ghz(5);
//! let zac = Zac::new(arch);
//!
//! // Rich ZAC-specific output: program, placement plan, report.
//! let out = zac.compile(&circuit)?;
//! assert!(out.total_fidelity() > 0.0);
//!
//! // Or through the trait, as the benchmark harness drives every backend.
//! let staged = zac::circuit::preprocess(&circuit);
//! let unified = Compiler::compile(&zac, &staged)?;
//! assert_eq!(unified.counts.g2, 4);
//! # Ok::<(), zac::Error>(())
//! ```

// The compiler pipeline crate is re-exported as `compiler` (not `core`) so
// a glob import of this facade never shadows the `core` primitive crate.
pub use zac_arch as arch;
pub use zac_baselines as baselines;
pub use zac_bench as bench;
pub use zac_cache as cache;
pub use zac_circuit as circuit;
pub use zac_core as compiler;
pub use zac_fidelity as fidelity;
pub use zac_ftqc as ftqc;
pub use zac_graph as graph;
pub use zac_place as place;
pub use zac_schedule as schedule;
pub use zac_serve as serve;
pub use zac_sim as sim;
pub use zac_telemetry as telemetry;
pub use zac_zair as zair;

/// Convenience error alias for examples and doctests.
pub type Error = Box<dyn std::error::Error>;

/// Commonly used items, re-exported in one place.
pub mod prelude {
    pub use zac_arch::Architecture;
    pub use zac_bench::corpus::{load_corpus, Corpus, CorpusEntry, LoadFailure};
    pub use zac_bench::{BatchRunner, CellFailure, ComparisonRow, RunOutcome};
    pub use zac_cache::{CacheKey, CacheStats, CachedCompiler, CompileCache};
    pub use zac_circuit::bench_circuits;
    pub use zac_circuit::{Circuit, Fingerprint};
    pub use zac_core::{
        CompileError, CompileOutput, Compiler, GateCounts, Labeled, PhaseTimings, Zac, ZacConfig,
        ZacOutput,
    };
    pub use zac_fidelity::{FidelityReport, NeutralAtomParams};
    pub use zac_place::{
        ExhaustivePlacer, PlacementConfig, PlacementEngine, Placer, WindowedPlacer,
    };
    pub use zac_schedule::ScheduleWorkspace;
    pub use zac_serve::{
        AdmissionLimits, CircuitEntry, EntryOutcome, RejectReason, Request, Response, Service,
        ServiceConfig,
    };
    pub use zac_telemetry::{MetricsSnapshot, SpanRecord};
    pub use zac_zair::Program;
}

// Compile every fenced Rust block in the README as a doctest (`cargo test
// --doc`), so the documented snippets — including the `CachedCompiler`
// usage example — can never drift from the real API.
#[cfg(doctest)]
#[doc = include_str!("../README.md")]
struct ReadmeDoctests;
