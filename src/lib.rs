//! # zac — Reuse-Aware Compilation for Zoned Quantum Architectures
//!
//! Facade crate re-exporting the full ZAC reproduction workspace
//! (HPCA 2025, Lin/Tan/Cong). See the README for the architecture overview
//! and `DESIGN.md` for the per-experiment index.
//!
//! The typical entry point is [`zac_core::Zac`]:
//!
//! ```
//! use zac::prelude::*;
//!
//! let arch = Architecture::reference();
//! let circuit = bench_circuits::ghz(5);
//! let compiler = Zac::new(arch);
//! let out = compiler.compile(&circuit)?;
//! assert!(out.total_fidelity() > 0.0);
//! # Ok::<(), zac::Error>(())
//! ```

pub use zac_arch as arch;
pub use zac_baselines as baselines;
pub use zac_circuit as circuit;
pub use zac_core as core;
pub use zac_fidelity as fidelity;
pub use zac_ftqc as ftqc;
pub use zac_graph as graph;
pub use zac_place as place;
pub use zac_schedule as schedule;
pub use zac_sim as sim;
pub use zac_zair as zair;

/// Convenience error alias for examples and doctests.
pub type Error = Box<dyn std::error::Error>;

/// Commonly used items, re-exported in one place.
pub mod prelude {
    pub use zac_arch::Architecture;
    pub use zac_circuit::bench_circuits;
    pub use zac_circuit::Circuit;
    pub use zac_core::{Zac, ZacConfig};
    pub use zac_fidelity::{FidelityReport, NeutralAtomParams};
    pub use zac_zair::Program;
}
