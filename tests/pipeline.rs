//! Cross-crate integration tests: the full ZAC pipeline from input circuit
//! to validated ZAIR and fidelity report.

use zac::circuit::{bench_circuits, preprocess};
use zac::compiler::{Zac, ZacConfig};
use zac::prelude::*;

fn quick_config() -> ZacConfig {
    let mut cfg = ZacConfig::full();
    cfg.placement.sa_iterations = 200;
    cfg
}

#[test]
fn every_suite_circuit_compiles_and_validates() {
    let arch = Architecture::reference();
    for entry in bench_circuits::paper_suite() {
        let staged = preprocess(&entry.circuit);
        let zac = Zac::with_config(arch.clone(), quick_config());
        let out =
            zac.compile_staged(&staged).unwrap_or_else(|e| panic!("{}: {e}", entry.circuit.name()));
        // The ZAIR interpreter re-validates the emitted program.
        let analysis = out.program.analyze(&arch).expect("valid ZAIR");
        assert_eq!(analysis.g2, staged.num_2q_gates(), "{}", entry.circuit.name());
        assert_eq!(analysis.g1, staged.num_1q_gates(), "{}", entry.circuit.name());
        assert_eq!(analysis.n_exc, 0, "{}: zoned guarantee", entry.circuit.name());
        // Semantic verification: the right gates fire in dependency order.
        // (Auto-split staging must be used when the zone is narrower.)
        let effective = if staged.max_parallelism() > arch.num_sites() {
            staged.with_max_stage_width(arch.num_sites())
        } else {
            staged.clone()
        };
        out.program
            .verify_against(&arch, &effective)
            .unwrap_or_else(|e| panic!("{}: {e}", entry.circuit.name()));
        let f = out.total_fidelity();
        assert!((0.0..=1.0).contains(&f), "{}: fidelity {f}", entry.circuit.name());
    }
}

#[test]
fn compiled_program_roundtrips_through_json() {
    let arch = Architecture::reference();
    let zac = Zac::with_config(arch.clone(), quick_config());
    let out = zac.compile(&bench_circuits::bv(14, 13)).unwrap();
    let json = out.program.to_json().expect("serialization succeeds");
    let back = zac::zair::Program::from_json(&json).unwrap();
    assert_eq!(back, out.program);
    let a1 = out.program.analyze(&arch).unwrap();
    let a2 = back.analyze(&arch).unwrap();
    assert_eq!(a1, a2);
}

#[test]
fn reuse_strictly_reduces_transfers_on_chains() {
    let arch = Architecture::reference();
    let staged = preprocess(&bench_circuits::ghz(30));
    let with = Zac::with_config(arch.clone(), ZacConfig::dyn_place_reuse())
        .compile_staged(&staged)
        .unwrap();
    let without = Zac::with_config(arch, ZacConfig::dyn_place()).compile_staged(&staged).unwrap();
    assert!(with.summary.n_tran < without.summary.n_tran);
    assert!(with.total_fidelity() > without.total_fidelity());
}

#[test]
fn ablation_order_holds_in_geomean() {
    // Fig. 11's qualitative ordering: Vanilla ≤ dynPlace ≤ dynPlace+reuse
    // (per-circuit inversions possible; geomean must be ordered).
    let arch = Architecture::reference();
    let circuits = [
        bench_circuits::ghz(23),
        bench_circuits::bv(30, 18),
        bench_circuits::wstate(15),
        bench_circuits::qft(10),
    ];
    let run = |cfg: ZacConfig| -> f64 {
        let fids: Vec<f64> = circuits
            .iter()
            .map(|c| {
                Zac::with_config(arch.clone(), cfg.clone()).compile(c).unwrap().total_fidelity()
            })
            .collect();
        zac::fidelity::geometric_mean(&fids)
    };
    let vanilla = run(ZacConfig::vanilla());
    let dyn_place = run(ZacConfig::dyn_place());
    let reuse = run(ZacConfig::dyn_place_reuse());
    // dynPlace's gain over Vanilla is small (paper: +5% on the full suite);
    // on this 4-circuit subset it may wobble within a few percent.
    assert!(dyn_place >= vanilla * 0.95, "dynPlace {dyn_place} far below vanilla {vanilla}");
    assert!(reuse > dyn_place, "reuse {reuse} <= dynPlace {dyn_place}");
    assert!(reuse > vanilla, "reuse {reuse} <= vanilla {vanilla}");
}

#[test]
fn zoned_zac_beats_monolithic_on_deep_circuits() {
    use zac::baselines::{compile_atomique, compile_enola};
    use zac::fidelity::NeutralAtomParams;

    let staged = preprocess(&bench_circuits::bv(70, 36));
    let p = NeutralAtomParams::reference();
    let zac_f = Zac::with_config(Architecture::reference(), quick_config())
        .compile_staged(&staged)
        .unwrap()
        .total_fidelity();
    let enola_f = compile_enola(&staged, 10, 10, &p).unwrap().report.total();
    let atomique_f = compile_atomique(&staged, 10, 10, &p).report.total();
    assert!(zac_f > 10.0 * enola_f, "ZAC {zac_f} should dwarf Enola {enola_f}");
    assert!(zac_f > 10.0 * atomique_f);
}

#[test]
fn multi_aod_and_multi_zone_architectures_compile() {
    let staged = preprocess(&bench_circuits::ising(42));
    for arch in [
        Architecture::reference().with_num_aods(2),
        Architecture::reference().with_num_aods(4),
        Architecture::arch1_small(),
        Architecture::arch2_two_zones(),
    ] {
        let out = Zac::with_config(arch.clone(), quick_config())
            .compile_staged(&staged)
            .unwrap_or_else(|e| panic!("{}: {e}", arch.name()));
        out.program.analyze(&arch).expect("valid ZAIR");
    }
}

#[test]
fn preprocessing_semantics_verified_by_simulator() {
    for circ in [
        bench_circuits::ghz(6),
        bench_circuits::bv(6, 3),
        bench_circuits::qft(5),
        bench_circuits::wstate(5),
    ] {
        let staged = preprocess(&circ);
        assert!(
            zac::sim::preprocessing_preserves_semantics(&circ, &staged),
            "{} changed semantics",
            circ.name()
        );
    }
}

#[test]
fn compile_times_stay_interactive() {
    // The paper's scalability claim: without SA, every instance solves in
    // well under a second.
    let arch = Architecture::reference();
    for entry in bench_circuits::paper_suite() {
        let staged = preprocess(&entry.circuit);
        let out = Zac::with_config(arch.clone(), ZacConfig::dyn_place_reuse())
            .compile_staged(&staged)
            .unwrap();
        assert!(
            out.compile_time.as_secs_f64() < 5.0,
            "{} took {:?}",
            entry.circuit.name(),
            out.compile_time
        );
    }
}
