// Bernstein-Vazirani over 5 data qubits + 1 ancilla, hidden string 10110.
// Exercises whole-register broadcast statements (`h q;`, `barrier q;`).
OPENQASM 2.0;
include "qelib1.inc";
qreg q[6];
creg c[5];
x q[5];
h q;
barrier q;
cx q[1], q[5];
cx q[2], q[5];
cx q[4], q[5];
barrier q;
h q;
measure q[0] -> c[0];
measure q[1] -> c[1];
measure q[2] -> c[2];
measure q[3] -> c[3];
measure q[4] -> c[4];
