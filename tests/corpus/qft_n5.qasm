// 5-qubit quantum Fourier transform.
// Exercises nested parentheses in parameters and whitespace before `(`.
OPENQASM 2.0;
include "qelib1.inc";
qreg q[5];
h q[0];
cu1(pi/2) q[1], q[0];
cu1(pi/4) q[2], q[0];
cu1((1+2)*pi/8) q[3], q[0];
cu1(pi/(2*2*2*2)) q[4], q[0];
h q[1];
cu1 (pi/2) q[2], q[1];
cu1(pi/4) q[3], q[1];
cu1(pi/8) q[4], q[1];
h q[2];
cu1(pi/2) q[3], q[2];
cu1(pi/4) q[4], q[2];
h q[3];
cu1(pi/2) q[4], q[3];
h q[4];
rz (pi/4) q[0];
u3( pi/2, 0, (pi) ) q[1];
swap q[0], q[4];
swap q[1], q[3];
