// Hardware-efficient variational ansatz layer using the extended qelib1
// vocabulary: cu3, crz, cy, ch, u2.
OPENQASM 2.0;
include "qelib1.inc";
qreg q[4];
ry(0.2) q[0];
ry(-0.4) q[1];
u2(0, pi) q[2];
ry(1.1) q[3];
cu3(0.5, 0.1, -0.2) q[0], q[1];
crz(pi/3) q[1], q[2];
cy q[2], q[3];
ch q[0], q[3];
cz q[1], q[3];
u1(pi/8) q[0];
u0(1) q[2];
