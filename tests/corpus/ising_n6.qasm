// Transverse-field Ising model Trotter step with a parameterized custom
// coupling layer (formal-parameter substitution in gate bodies).
OPENQASM 2.0;
include "qelib1.inc";
gate zz(theta) a, b
{
  rzz(theta*2) a, b;
}
qreg q[6];
h q;
rzz(0.3) q[0], q[1];
rzz(0.3) q[2], q[3];
zz(0.15) q[4], q[5];
rzz(0.3) q[1], q[2];
rzz(0.3) q[3], q[4];
rx(0.7) q;
rz(cos(0)/2) q[0];
