//! Property-based integration tests: random circuits through the whole
//! pipeline must always produce valid, self-consistent ZAIR.

use proptest::prelude::*;
use zac::circuit::{preprocess, Circuit};
use zac::compiler::{Zac, ZacConfig};
use zac::prelude::*;

/// Random circuits over H/T/CX/CZ with up to 10 qubits and 25 gates.
fn arb_circuit() -> impl Strategy<Value = Circuit> {
    (2usize..10).prop_flat_map(|n| {
        let gate = prop_oneof![
            (0..n).prop_map(|q| (0usize, q, 0usize)),
            (0..n).prop_map(|q| (1usize, q, 0usize)),
            (0..n, 0..n).prop_map(|(a, b)| (2usize, a, b)),
            (0..n, 0..n).prop_map(|(a, b)| (3usize, a, b)),
        ];
        proptest::collection::vec(gate, 1..25).prop_map(move |ops| {
            let mut c = Circuit::new("prop", n);
            for (k, a, b) in ops {
                match k {
                    0 => {
                        c.h(a);
                    }
                    1 => {
                        c.t(a);
                    }
                    2 if a != b => {
                        c.cx(a, b);
                    }
                    3 if a != b => {
                        c.cz(a, b);
                    }
                    _ => {}
                }
            }
            c
        })
    })
}

fn quick_config(reuse: bool) -> ZacConfig {
    let mut cfg = if reuse { ZacConfig::dyn_place_reuse() } else { ZacConfig::dyn_place() };
    cfg.placement.sa_iterations = 50;
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The emitted ZAIR always validates, with exact gate counts, zero idle
    /// excitations, and fidelity in [0, 1].
    #[test]
    fn pipeline_is_sound_for_random_circuits(circ in arb_circuit(), reuse in any::<bool>()) {
        let arch = Architecture::reference();
        let staged = preprocess(&circ);
        let zac = Zac::with_config(arch.clone(), quick_config(reuse));
        let out = zac.compile_staged(&staged).expect("compiles");
        let analysis = out.program.analyze(&arch).expect("valid ZAIR");
        prop_assert_eq!(analysis.g2, staged.num_2q_gates());
        prop_assert_eq!(analysis.g1, staged.num_1q_gates());
        prop_assert_eq!(analysis.n_exc, 0);
        // Semantic check: the compiled program executes exactly the staged
        // circuit's gates, in dependency order.
        out.program.verify_against(&arch, &staged).expect("semantically correct");
        let f = out.total_fidelity();
        prop_assert!((0.0..=1.0).contains(&f));
        // Duration covers every instruction.
        for inst in &out.program.instructions {
            prop_assert!(inst.end_time() <= analysis.total_duration_us + 1e-9);
        }
    }

    /// Preprocessing + compilation preserve circuit semantics (simulator
    /// check on the staged circuit ZAC actually consumed).
    #[test]
    fn semantics_preserved_for_random_circuits(circ in arb_circuit()) {
        let staged = preprocess(&circ);
        prop_assert!(zac::sim::preprocessing_preserves_semantics(&circ, &staged));
    }

    /// Transfers are conserved: every job moves each qubit with exactly two
    /// transfers, and the analysis total matches the per-job sum.
    #[test]
    fn transfer_accounting_is_consistent(circ in arb_circuit()) {
        let arch = Architecture::reference();
        let zac = Zac::with_config(arch.clone(), quick_config(true));
        let out = zac.compile(&circ).expect("compiles");
        let from_jobs: usize = out.program.jobs().map(|j| 2 * j.num_qubits()).sum();
        prop_assert_eq!(out.summary.n_tran, from_jobs);
    }
}
