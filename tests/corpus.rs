//! Corpus ingestion smoke tests (run in CI): every bundled `.qasm` file
//! parses, the suite × compiler sweep is failure-free, parallel equals
//! serial, and the parser's qelib1 decompositions are semantically exact.

use zac::bench::{corpus::load_corpus, default_compilers, BatchRunner};
use zac::circuit::qasm::parse_qasm;
use zac::circuit::{Circuit, OneQGate};
use zac::prelude::*;
use zac::sim::StateVector;

const CORPUS_DIR: &str = "tests/corpus";

#[test]
fn bundled_corpus_parses_cleanly_in_deterministic_order() {
    let corpus = load_corpus(CORPUS_DIR);
    assert!(corpus.is_clean(), "{:#?}", corpus.failures);
    assert_eq!(corpus.len(), 10);
    // Deterministic ordering: sorted by file name.
    let files: Vec<&str> = corpus.entries.iter().map(|e| e.file.as_str()).collect();
    let mut sorted = files.clone();
    sorted.sort_unstable();
    assert_eq!(files, sorted);
    // Circuits are named after their file stems.
    for e in &corpus.entries {
        assert_eq!(format!("{}.qasm", e.staged.name), e.file);
    }
}

/// The acceptance gate: the bundled corpus — which includes nested-paren
/// parameters (qft_n5), whole-register broadcast (bv_n6), and custom gate
/// definitions (adder_n4, ising_n6) — sweeps across the full lineup with
/// zero `CellFailure`s, and the parallel sweep is bit-identical to a
/// serial rerun through the shared cache.
#[test]
fn corpus_sweep_is_failure_free_and_deterministic() {
    let corpus = load_corpus(CORPUS_DIR);
    assert!(corpus.is_clean(), "{:#?}", corpus.failures);
    let suite = corpus.suite();
    let compilers = default_compilers();
    let cache = CompileCache::in_memory(1024);

    let rows = BatchRunner::parallel().with_cache(cache.clone()).run(&compilers, &suite);
    assert_eq!(rows.len(), suite.len());
    for row in &rows {
        assert!(row.failures.is_empty(), "{}: {:?}", row.name, row.failures);
        // Every corpus circuit fits the reference architectures.
        assert_eq!(row.results.len(), compilers.len(), "{}", row.name);
    }

    let serial = BatchRunner::serial().with_cache(cache).run(&compilers, &suite);
    for (p, s) in rows.iter().zip(&serial) {
        assert_eq!(p.name, s.name);
        assert_eq!(p.results.len(), s.results.len(), "{}", p.name);
        for (pr, sr) in p.results.iter().zip(&s.results) {
            assert_eq!(pr.compiler, sr.compiler);
            assert_eq!(pr.report, sr.report, "{} / {}", p.name, pr.compiler);
            assert_eq!(pr.counts, sr.counts, "{} / {}", p.name, pr.compiler);
            assert_eq!(
                pr.compile_secs.to_bits(),
                sr.compile_secs.to_bits(),
                "{} / {}: warm rerun must carry the original compile time",
                p.name,
                pr.compiler
            );
        }
    }
}

/// Broadcast and gate-definition statements parse to the expected shapes on
/// the bundled files themselves (not just synthetic unit-test inputs).
#[test]
fn bundled_files_exercise_the_new_grammar() {
    let read = |f: &str| std::fs::read_to_string(format!("{CORPUS_DIR}/{f}")).unwrap();

    // bv_n6: two broadcast `h q;` layers over 6 qubits plus 3 CX and 1 X.
    let bv = parse_qasm(&read("bv_n6.qasm"), "bv_n6").unwrap();
    assert_eq!(bv.num_qubits(), 6);
    assert_eq!(bv.num_1q_gates(), 13);
    assert_eq!(bv.num_2q_gates(), 3);

    // qft_n5: nested parens evaluate to the same angles as plain forms.
    let qft = parse_qasm(&read("qft_n5.qasm"), "qft_n5").unwrap();
    let angles: Vec<f64> = qft
        .gates()
        .iter()
        .filter_map(|g| match *g {
            zac::circuit::Gate::TwoQ { kind: zac::circuit::TwoQKind::Cp(t), .. } => Some(t),
            _ => None,
        })
        .collect();
    let pi = std::f64::consts::PI;
    assert!((angles[2] - 3.0 * pi / 8.0).abs() < 1e-12, "(1+2)*pi/8 = {}", angles[2]);
    assert!((angles[3] - pi / 16.0).abs() < 1e-12, "pi/(2*2*2*2) = {}", angles[3]);

    // adder_n4: custom gates expand; majority = 2 CX + 6-CX Toffoli.
    let adder = parse_qasm(&read("adder_n4.qasm"), "adder_n4").unwrap();
    assert_eq!(adder.num_qubits(), 6);
    // 4 majority/unmaj macro expansions (8 CX each) + the carry-out CX.
    assert_eq!(adder.num_2q_gates(), 4 * 8 + 1);

    // qaoa_n3: sx/sxdg lower to 3 one-qubit gates each, incl. a broadcast
    // `sxdg q;` over the whole register.
    let qaoa = parse_qasm(&read("qaoa_n3.qasm"), "qaoa_n3").unwrap();
    assert_eq!(qaoa.num_qubits(), 3);
    assert_eq!(qaoa.num_2q_gates(), 4);
    assert_eq!(qaoa.num_1q_gates(), 3 * 3 + 2 + 3 * 3);
}

/// Asserts `a == z · b` amplitude-wise and returns the factor `z`
/// (|z| = 1 for unitary circuits on the same input).
fn global_phase_between(
    a: &StateVector,
    b: &StateVector,
    what: &str,
) -> zac::circuit::complex::C64 {
    assert_eq!(a.num_qubits(), b.num_qubits());
    let dim = 1usize << a.num_qubits();
    // Pick the largest reference amplitude to extract the phase stably.
    let pivot = (0..dim)
        .max_by(|&i, &j| {
            b.amplitude(i).norm().partial_cmp(&b.amplitude(j).norm()).expect("finite amplitudes")
        })
        .expect("non-empty state");
    let bp = b.amplitude(pivot);
    assert!(bp.norm() > 1e-6, "{what}: degenerate reference state");
    let z = a.amplitude(pivot) * bp.conj().scale(1.0 / bp.norm_sqr());
    for i in 0..dim {
        let d = a.amplitude(i) - z * b.amplitude(i);
        assert!(
            d.norm() < 1e-9,
            "{what}: amplitude {i} differs: {:?} vs {:?} (phase {z:?})",
            a.amplitude(i),
            b.amplitude(i)
        );
    }
    z
}

/// The qelib1 decompositions behind `cy`/`ch`/`crz`/`cu3`/`rzz` implement
/// the controlled gates exactly up to a *global* phase that must be
/// identical on both control branches (a branch-dependent phase would be a
/// real bug: it changes relative phases in superpositions). Both control
/// basis states are checked with the target in a generic superposition,
/// which by linearity pins down the full controlled unitary. The phase is
/// exactly 1 everywhere except qelib1's `ch`, which is e^{iπ/4}·CH by
/// construction.
#[test]
fn qelib1_decompositions_match_their_definitions() {
    type Builder = fn(&mut Circuit);
    let cases: Vec<(&str, Builder, Builder, f64)> = vec![
        (
            "cy",
            |c| {
                c.cy_decomposed(0, 1);
            },
            |c| {
                c.one_q(OneQGate::Y, 1);
            },
            0.0,
        ),
        (
            "ch",
            |c| {
                c.ch_decomposed(0, 1);
            },
            |c| {
                c.h(1);
            },
            std::f64::consts::FRAC_PI_4,
        ),
        (
            "crz",
            |c| {
                c.crz_decomposed(1.31, 0, 1);
            },
            |c| {
                c.rz(1.31, 1);
            },
            0.0,
        ),
        (
            "cu3",
            |c| {
                c.cu3_decomposed(0.57, -0.23, 1.31, 0, 1);
            },
            |c| {
                c.one_q(OneQGate::U3 { theta: 0.57, phi: -0.23, lambda: 1.31 }, 1);
            },
            0.0,
        ),
    ];

    for (name, decomposed, target_gate, expected_phase) in cases {
        let mut phases = Vec::new();
        for ctrl_on in [false, true] {
            let mut dec = Circuit::new("dec", 2);
            let mut reference = Circuit::new("ref", 2);
            for c in [&mut dec, &mut reference] {
                if ctrl_on {
                    c.x(0);
                }
                // Generic target superposition with a nontrivial phase.
                c.ry(0.77, 1).rz(0.31, 1);
            }
            decomposed(&mut dec);
            if ctrl_on {
                target_gate(&mut reference);
            }
            phases.push(global_phase_between(
                &StateVector::run(&dec),
                &StateVector::run(&reference),
                &format!("{name} (control {})", u8::from(ctrl_on)),
            ));
        }
        let expected = zac::circuit::complex::C64::cis(expected_phase);
        for z in &phases {
            assert!((*z - expected).norm() < 1e-9, "{name}: phase {z:?} != {expected:?}");
        }
    }

    // rzz(θ) in the qelib1 convention is diag(1, e^{iθ}, e^{iθ}, 1):
    // u1(θ) on each qubit followed by cu1(-2θ) on the pair.
    let thetazz = 0.91;
    let mut dec = Circuit::new("dec", 2);
    let mut reference = Circuit::new("ref", 2);
    for c in [&mut dec, &mut reference] {
        c.h(0).h(1).rz(0.4, 0);
    }
    dec.rzz_decomposed(thetazz, 0, 1);
    reference.one_q(OneQGate::Phase(thetazz), 0).one_q(OneQGate::Phase(thetazz), 1).cp(
        -2.0 * thetazz,
        0,
        1,
    );
    let z = global_phase_between(&StateVector::run(&dec), &StateVector::run(&reference), "rzz");
    assert!((z - zac::circuit::complex::C64::ONE).norm() < 1e-9, "rzz: phase {z:?}");
}

/// `sx`/`sxdg` lower through their qelib1 decompositions: exactly √X and
/// √X† up to the documented global phases e^{∓iπ/4} (qelib1 defines `sx`
/// with a π/4 global phase). The reference uses the exact identity
/// SX = H·S·H (no phase), so the check is against the true matrix, not the
/// decomposition re-tested against itself.
#[test]
fn sx_decompositions_match_sqrt_x_exactly() {
    let pi4 = std::f64::consts::FRAC_PI_4;
    type Builder = fn(&mut Circuit);
    let cases: Vec<(&str, Builder, Builder, f64)> = vec![
        (
            "sx",
            |c| {
                c.sx_decomposed(0);
            },
            |c| {
                c.h(0).one_q(OneQGate::S, 0).h(0); // H·S·H = SX exactly
            },
            -pi4,
        ),
        (
            "sxdg",
            |c| {
                c.sxdg_decomposed(0);
            },
            |c| {
                c.h(0).one_q(OneQGate::Sdg, 0).h(0); // H·S†·H = SX† exactly
            },
            pi4,
        ),
    ];
    for (name, decomposed, reference_gate, expected_phase) in cases {
        let mut dec = Circuit::new("dec", 1);
        let mut reference = Circuit::new("ref", 1);
        for c in [&mut dec, &mut reference] {
            // Generic superposition with a nontrivial phase, so both matrix
            // columns are pinned.
            c.ry(0.77, 0).rz(0.31, 0);
        }
        decomposed(&mut dec);
        reference_gate(&mut reference);
        let z = global_phase_between(&StateVector::run(&dec), &StateVector::run(&reference), name);
        let expected = zac::circuit::complex::C64::cis(expected_phase);
        assert!((z - expected).norm() < 1e-9, "{name}: phase {z:?} != {expected:?}");
        // The phase must not depend on the input state (branch-independent).
        let mut dec2 = Circuit::new("dec2", 1);
        let mut ref2 = Circuit::new("ref2", 1);
        for c in [&mut dec2, &mut ref2] {
            c.x(0).ry(-1.1, 0);
        }
        decomposed(&mut dec2);
        reference_gate(&mut ref2);
        let z2 = global_phase_between(&StateVector::run(&dec2), &StateVector::run(&ref2), name);
        assert!((z2 - expected).norm() < 1e-9, "{name}: state-dependent phase {z2:?}");
    }
}

/// Parsing a corpus file and re-parsing its `to_qasm` emission agree —
/// the ingestion path is self-consistent end to end.
#[test]
fn corpus_files_roundtrip_through_emission() {
    for file in ["qft_n5.qasm", "variational_n4.qasm", "ising_n6.qasm"] {
        let src = std::fs::read_to_string(format!("{CORPUS_DIR}/{file}")).unwrap();
        let first = parse_qasm(&src, "first").unwrap();
        let second = parse_qasm(&zac::circuit::qasm::to_qasm(&first), "first").unwrap();
        assert_eq!(first.gates(), second.gates(), "{file}");
    }
}
