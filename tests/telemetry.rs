//! Telemetry integration contract: recording must never change what the
//! compiler produces, and when enabled it must actually observe the whole
//! pipeline.
//!
//! The recorder is process-global, so everything runs inside one ordered
//! test: a telemetry-off sweep of the full 17-circuit paper suite, then a
//! telemetry-on sweep, for both placement engines — outputs compared
//! bit-for-bit — followed by assertions that the enabled run emitted
//! counters from every pipeline namespace and a span tree with the
//! place/schedule phase split for every circuit.

use zac::circuit::{bench_circuits, preprocess};
use zac::compiler::{Zac, ZacConfig};
use zac::prelude::*;

/// Full pipeline with a reduced SA budget so the double sweep stays quick;
/// identical for the on and off passes, which is all bit-identity needs.
fn engine_config(engine: &PlacementEngine) -> ZacConfig {
    let mut cfg = ZacConfig::full();
    cfg.placement.sa_iterations = 100;
    cfg.placement.engine = engine.clone();
    cfg
}

/// Compiles the paper suite and returns per-circuit (name, program JSON,
/// fidelity bits) — everything downstream consumers can observe.
fn compile_suite(engine: &PlacementEngine) -> Vec<(String, String, u64)> {
    let arch = Architecture::reference();
    bench_circuits::paper_suite()
        .iter()
        .map(|entry| {
            let staged = preprocess(&entry.circuit);
            let out = Zac::with_config(arch.clone(), engine_config(engine))
                .compile_staged(&staged)
                .unwrap_or_else(|e| panic!("{}: {e}", staged.name));
            let json = out.program.to_json().expect("program serializes");
            (staged.name.clone(), json, out.total_fidelity().to_bits())
        })
        .collect()
}

#[test]
fn telemetry_never_changes_output_and_observes_the_pipeline() {
    for engine in &[PlacementEngine::Exhaustive, PlacementEngine::windowed()] {
        zac::telemetry::set_enabled(false);
        let off = compile_suite(engine);

        zac::telemetry::set_enabled(true);
        let before = MetricsSnapshot::capture();
        let on = compile_suite(engine);
        // A cached pass exercises the cache namespace under the recorder:
        // one miss, one memory hit.
        let cached = CachedCompiler::new(
            Zac::with_config(Architecture::reference(), engine_config(engine)),
            CompileCache::in_memory(16),
        );
        let staged = preprocess(&bench_circuits::ghz(8));
        let first = cached.compile(&staged).expect("cold compile");
        let second = cached.compile(&staged).expect("warm compile");
        assert_eq!(first.program, second.program);
        // And a QASM parse exercises the circuit namespace.
        let qasm = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\ncx q[0], q[1];\n";
        zac::circuit::qasm::parse_qasm(qasm, "telemetry_probe").expect("probe parses");
        let delta = MetricsSnapshot::capture().delta_since(&before);
        let spans = zac::telemetry::take_spans();
        zac::telemetry::set_enabled(false);

        // Bit-identity: the recorder must be invisible to compiler output.
        assert_eq!(off.len(), on.len());
        for ((name_off, json_off, fid_off), (name_on, json_on, fid_on)) in off.iter().zip(&on) {
            assert_eq!(name_off, name_on);
            assert_eq!(json_off, json_on, "{name_off}: program changed under telemetry");
            assert_eq!(fid_off, fid_on, "{name_off}: fidelity changed under telemetry");
        }

        // Counters arrived from every pipeline namespace.
        for ns in ["core.", "circuit.", "place.", "schedule.", "cache."] {
            assert!(
                delta.counter_sum_with_prefix(ns) > 0,
                "namespace '{ns}' recorded nothing while enabled"
            );
        }
        assert!(delta.counter("cache.lookup.hits") >= 1, "warm compile should hit the cache");
        assert!(delta.counter("cache.lookup.misses") >= 1, "cold compile should miss the cache");

        // The span tree shows the place/schedule phase split per circuit,
        // parented under the compile root.
        for (name, _, _) in &off {
            for phase in ["core.place", "core.schedule"] {
                assert!(
                    spans.iter().any(|s| {
                        s.name == phase
                            && s.label.as_deref() == Some(name)
                            && s.parent == Some("core.compile")
                    }),
                    "no {phase} span for {name}"
                );
            }
        }

        // The Chrome-trace export of those spans is well-formed JSON with
        // one complete event per span.
        let trace = zac::telemetry::chrome_trace_json(&spans);
        let doc: serde_json::Value = serde_json::from_str(&trace).expect("trace is valid JSON");
        let events = doc.get("traceEvents").and_then(|v| v.as_array()).expect("traceEvents array");
        assert_eq!(events.len(), spans.len());
    }
}
