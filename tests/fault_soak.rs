//! The resilience acceptance soak (DESIGN.md §10): the bundled QASM corpus
//! is pushed through a [`Service`] under three different seeded fault
//! plans — cache IO faults, compiler panics, injected delays against a
//! tight compile deadline — and under *every* plan each submitted entry
//! must receive **exactly one terminal response**, no worker may be
//! permanently lost, and the service must keep serving afterwards.
//!
//! The final phase disarms injection entirely and re-runs the full
//! 17-circuit paper suite on a fresh service: outputs must be semantically
//! bit-identical (`semantic_json`) to direct compiles — the fault-point
//! instrumentation must be invisible when disarmed.
//!
//! Fault plans are process-global, so this file is its own test binary and
//! runs as a single `#[test]` with ordered phases.

use std::collections::HashMap;
use std::path::Path;
use zac::circuit::qasm::{parse_qasm, to_qasm};
use zac::circuit::{bench_circuits, preprocess};
use zac::compiler::{Zac, ZacConfig};
use zac::prelude::*;
use zac::serve::{Request, Response, Service, ServiceConfig};
use zac::telemetry::{fault, FaultPlan};

fn soak_config() -> ZacConfig {
    let mut cfg = ZacConfig::full();
    cfg.placement.sa_iterations = 100;
    cfg
}

/// The bundled corpus (`tests/corpus/*.qasm`) as wire entries.
fn bundled_corpus() -> Vec<CircuitEntry> {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let mut files: Vec<_> = std::fs::read_dir(&dir)
        .expect("bundled corpus directory exists")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x.eq_ignore_ascii_case("qasm")))
        .collect();
    files.sort();
    files
        .into_iter()
        .map(|path| CircuitEntry {
            name: path.file_stem().expect("stem").to_string_lossy().into_owned(),
            qasm: std::fs::read_to_string(&path).expect("corpus file readable"),
        })
        .collect()
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("zac-soak-{}-{tag}", std::process::id()))
}

/// Drains one request and enforces the soak invariant: exactly one
/// terminal `Result` per entry (any outcome), then exactly one `Done`
/// whose tallies add up. Returns how many entries landed in each class.
fn drain_strictly(service: &Service, request: Request) -> (usize, usize, usize) {
    let total = request.circuits.len();
    let id = request.id.clone();
    let mut seen: HashMap<usize, usize> = HashMap::new();
    let mut done = None;
    let (mut ok, mut rejected, mut failed) = (0usize, 0usize, 0usize);
    for response in service.submit(request) {
        match response {
            Response::Result { entry, outcome, .. } => {
                assert!(done.is_none(), "{id}: results after the terminal Done");
                *seen.entry(entry).or_default() += 1;
                match outcome {
                    EntryOutcome::Ok(_) => ok += 1,
                    EntryOutcome::Rejected(_) => rejected += 1,
                    EntryOutcome::Failed(_) => failed += 1,
                }
            }
            Response::Done(d) => {
                assert!(done.replace(d).is_none(), "{id}: two Done lines");
            }
            other => panic!("{id}: unexpected response {other:?}"),
        }
    }
    assert_eq!(seen.len(), total, "{id}: every entry got a terminal response");
    for (entry, count) in &seen {
        assert_eq!(*count, 1, "{id}: entry {entry} got {count} terminal responses");
    }
    let done = done.unwrap_or_else(|| panic!("{id}: stream must end with Done"));
    assert_eq!(
        (done.ok, done.rejected, done.failed),
        (ok, rejected, failed),
        "{id}: Done tallies must match the streamed outcomes"
    );
    (ok, rejected, failed)
}

/// Runs `waves` corpus waves through `service` under `plan`, then disarms
/// and proves the service still compiles.
fn soak(label: &str, service: &Service, plan: &str, waves: usize) {
    let corpus = bundled_corpus();
    assert_eq!(corpus.len(), 10, "the bundled corpus");
    fault::arm(FaultPlan::parse(plan).expect("soak plan parses"));
    for wave in 0..waves {
        drain_strictly(
            service,
            Request::new(format!("{label}-{wave}"), "Zoned-ZAC", corpus.clone()),
        );
    }
    fault::disarm();

    // Give any breaker opened during the soak time to finish its cooldown,
    // then prove the pool still serves: a clean full wave succeeds.
    std::thread::sleep(std::time::Duration::from_millis(150));
    let probe = format!("{label}-probe");
    let (ok, rejected, failed) =
        drain_strictly(service, Request::new(probe.clone(), "Zoned-ZAC", corpus.clone()));
    // A probe entry can still trip a half-open breaker check, but a clean
    // wave right after must be all-ok.
    if (ok, rejected, failed) != (corpus.len(), 0, 0) {
        let (ok, rejected, failed) =
            drain_strictly(service, Request::new(format!("{probe}-2"), "Zoned-ZAC", corpus));
        assert_eq!(
            (ok, rejected, failed),
            (10, 0, 0),
            "{label}: the service must fully recover once injection stops"
        );
    }
}

#[test]
fn soaked_service_always_terminates_and_recovers_bit_identical() {
    let injected_before = fault::injected();

    // Plan 1 — cache-layer IO faults against a disk-backed cache: torn-off
    // writes retry or surface as disk errors, failed reads degrade to
    // misses; compiles themselves never fail, so every wave is all-ok.
    let dir = temp_dir("cache-io");
    let service = Service::new(ServiceConfig {
        workers: 4,
        zac_config: soak_config(),
        cache: CompileCache::with_disk(64, &dir).expect("disk cache opens"),
        breaker_cooldown_ms: 50,
        ..Default::default()
    });
    soak("cache-io", &service, "21:cache.disk.write=io@0.5,cache.disk.read=io@0.25", 3);
    let stats = service.cache().stats();
    assert!(
        stats.disk_retries > 0 || stats.disk_errors > 0,
        "the cache plan must actually bite: {stats:?}"
    );
    drop(service);
    std::fs::remove_dir_all(&dir).ok();

    // Plan 2 — compiler panics at 30%: entries fail with typed panic
    // responses (or breaker rejections while it is open), workers respawn,
    // and the pool never shrinks.
    let service = Service::new(ServiceConfig {
        workers: 4,
        zac_config: soak_config(),
        breaker_cooldown_ms: 50,
        ..Default::default()
    });
    soak("panic", &service, "22:serve.exec.compile=panic@0.3", 3);
    assert!(
        service.worker_respawns() > 0,
        "a 30% panic rate over 30 entries must kill (and respawn) workers"
    );
    drop(service);

    // Plan 3 — injected 20 ms delays against a 5 ms compile deadline: the
    // watchdog cancels delayed entries, undelayed ones compile normally.
    let service = Service::new(ServiceConfig {
        workers: 4,
        zac_config: soak_config(),
        compile_deadline_ms: Some(5),
        breaker_cooldown_ms: 50,
        breaker_threshold: 0,
        ..Default::default()
    });
    let corpus = bundled_corpus();
    fault::arm(FaultPlan::parse("23:serve.exec.compile=delay20@0.5").expect("plan parses"));
    let mut cancelled_any = false;
    for wave in 0..3 {
        let (_, _, failed) = drain_strictly(
            &service,
            Request::new(format!("delay-{wave}"), "Zoned-ZAC", corpus.clone()),
        );
        cancelled_any |= failed > 0;
    }
    fault::disarm();
    assert!(cancelled_any, "20 ms delays against a 5 ms budget must cancel entries");
    assert_eq!(service.worker_respawns(), 0, "cancellation never costs a worker");
    drop(service);

    assert!(fault::injected() > injected_before, "the soak actually injected faults");

    // Recovery: with injection disarmed, a fresh service compiles the full
    // 17-circuit paper suite bit-identically to direct compiles — the
    // instrumentation must be invisible when off.
    let service =
        Service::new(ServiceConfig { workers: 4, zac_config: soak_config(), ..Default::default() });
    let mut entries = Vec::new();
    let mut staged = Vec::new();
    for bench in bench_circuits::paper_suite() {
        let name = bench.circuit.name().to_string();
        let qasm = to_qasm(&bench.circuit);
        staged.push(preprocess(&parse_qasm(&qasm, &name).expect("suite QASM round-trips")));
        entries.push(CircuitEntry { name, qasm });
    }
    assert_eq!(entries.len(), 17, "the full paper suite");
    let mut outputs = HashMap::new();
    for response in service.submit(Request::new("recovery", "Zoned-ZAC", entries)) {
        match response {
            Response::Result { entry, outcome, .. } => {
                let out = outcome.output().expect("recovery wave compiles").clone();
                outputs.insert(entry, out);
            }
            Response::Done(done) => assert_eq!((done.ok, done.rejected, done.failed), (17, 0, 0)),
            other => panic!("unexpected response {other:?}"),
        }
    }
    let zac = Zac::with_config(Architecture::reference(), soak_config());
    for (index, circuit) in staged.iter().enumerate() {
        let direct =
            Compiler::compile(&zac, circuit).unwrap_or_else(|e| panic!("{}: {e}", circuit.name));
        assert_eq!(
            outputs[&index].semantic_json(),
            direct.semantic_json(),
            "{}: disarmed service output diverges from the direct compile",
            circuit.name
        );
    }
}
