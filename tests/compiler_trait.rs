//! Cross-crate tests of the unified `Compiler` trait: all five compilers
//! (ZAC + the four baselines) must run through the one interface, and the
//! rayon `BatchRunner` must be indistinguishable from a serial sweep.

use zac::bench::{default_compilers, BatchRunner};
use zac::circuit::{bench_circuits, preprocess, StagedCircuit};
use zac::prelude::*;

/// The two probe workloads: a sequential GHZ chain and a QAOA-style
/// Trotterized Ising circuit (parallel ZZ layers).
fn probes() -> Vec<StagedCircuit> {
    vec![preprocess(&bench_circuits::ghz(8)), preprocess(&bench_circuits::ising(12))]
}

#[test]
fn all_five_compilers_run_through_the_trait() {
    let arch = Architecture::reference();
    for staged in probes() {
        let mut seen = Vec::new();
        for compiler in default_compilers() {
            let out = compiler
                .compile(&staged)
                .unwrap_or_else(|e| panic!("{} on {}: {e}", compiler.name(), staged.name));
            // Every compiler yields a usable fidelity...
            let f = out.total_fidelity();
            assert!(f > 0.0 && f <= 1.0, "{} on {}: fidelity {f}", compiler.name(), staged.name);
            // ...consistent named counts...
            assert_eq!(out.counts.g2, out.summary.g2, "{}", compiler.name());
            assert_eq!(out.counts.n_tran, out.summary.n_tran, "{}", compiler.name());
            // Routing may add gates (SWAP insertion) but never drops any.
            assert!(
                out.counts.g2 >= staged.num_2q_gates(),
                "{}: {} 2Q gates < circuit's {}",
                compiler.name(),
                out.counts.g2,
                staged.num_2q_gates()
            );
            // ...and, when a ZAIR program is emitted, it re-validates
            // against the target architecture.
            if let Some(program) = &out.program {
                assert_eq!(compiler.name(), "Zoned-ZAC", "only ZAC emits ZAIR today");
                let analysis = program.analyze(&arch).expect("emitted ZAIR validates");
                assert_eq!(analysis.g2, out.counts.g2);
                assert_eq!(analysis.n_exc, 0, "zoned guarantee");
            }
            seen.push(compiler.name().to_owned());
        }
        // ZAC + 4 baselines (SC appears twice: Heron and Grid machines).
        assert_eq!(
            seen,
            [
                "SC-Heron",
                "SC-Grid",
                "Monolithic-Atomique",
                "Monolithic-Enola",
                "Zoned-NALAC",
                "Zoned-ZAC"
            ],
            "{}",
            staged.name
        );
    }
}

#[test]
fn trait_output_matches_inherent_zac_output() {
    let arch = Architecture::reference();
    let staged = preprocess(&bench_circuits::ghz(8));
    let zac = Zac::new(arch);
    let rich = zac.compile_staged(&staged).unwrap();
    let unified = Compiler::compile(&zac, &staged).unwrap();
    assert_eq!(unified.report, rich.report);
    assert_eq!(unified.summary, rich.summary);
    assert_eq!(unified.program.as_ref(), Some(&rich.program));
    assert_eq!(unified.counts, GateCounts::from(&rich.summary));
}

#[test]
fn batch_runner_is_deterministic_under_rayon() {
    let suite = probes();
    let compilers = default_compilers();
    let par = BatchRunner::parallel().run(&compilers, &suite);
    let ser = BatchRunner::serial().run(&compilers, &suite);
    assert_eq!(par.len(), ser.len());
    for (p, s) in par.iter().zip(&ser) {
        assert_eq!(p.name, s.name);
        assert_eq!(p.results.len(), s.results.len());
        for (pr, sr) in p.results.iter().zip(&s.results) {
            assert_eq!(pr.compiler, sr.compiler);
            assert_eq!(pr.report, sr.report, "{} / {}", p.name, pr.compiler);
            assert_eq!(pr.counts, sr.counts, "{} / {}", p.name, pr.compiler);
        }
    }
    // Repeated parallel runs are also identical to each other.
    let par2 = BatchRunner::parallel().run(&compilers, &suite);
    for (a, b) in par.iter().zip(&par2) {
        for (ra, rb) in a.results.iter().zip(&b.results) {
            assert_eq!(ra.report, rb.report);
        }
    }
}

#[test]
fn labeled_wrapper_renames_without_changing_results() {
    let staged = preprocess(&bench_circuits::ghz(8));
    let zac = Zac::new(Architecture::reference());
    let labeled = Labeled::new("ZAC-relabeled", zac.clone());
    assert_eq!(labeled.name(), "ZAC-relabeled");
    let a = Compiler::compile(&zac, &staged).unwrap();
    let b = labeled.compile(&staged).unwrap();
    assert_eq!(a.report, b.report);
}
