//! Serving bit-identity contract: routing the full 17-circuit paper suite
//! through `zac-serve` must produce exactly what a direct compile — and a
//! direct [`BatchRunner`] sweep — produces, for both placement engines.
//!
//! "Bit-identical" here means every semantic field: program, execution
//! summary, fidelity report, gate counts, and phase-timing *presence*.
//! Wall-clock fields (`compile_time`, phase durations) legitimately differ
//! between runs, so fresh compiles compare via the versioned envelope's
//! `semantic_json()`; warm-wave responses additionally compare raw bytes
//! against the cold wave (cache hits preserve the original timings, so
//! only the `from_cache` flag may differ).

use std::collections::HashMap;
use zac::circuit::qasm::{parse_qasm, to_qasm};
use zac::circuit::{bench_circuits, preprocess, StagedCircuit};
use zac::compiler::{Zac, ZacConfig};
use zac::prelude::*;
use zac::serve::{Request, Response, Service, ServiceConfig};

/// Full pipeline with a reduced SA budget so the multi-engine double sweep
/// stays quick; the service and every direct path use the identical value.
fn engine_config(engine: &PlacementEngine) -> ZacConfig {
    let mut cfg = ZacConfig::full();
    cfg.placement.sa_iterations = 100;
    cfg.placement.engine = engine.clone();
    cfg
}

/// The paper suite as wire entries, plus the staged circuits a direct
/// compile sees — both derived from the same QASM text, so the service and
/// the reference path get byte-identical inputs.
fn suite() -> (Vec<CircuitEntry>, Vec<StagedCircuit>) {
    let mut entries = Vec::new();
    let mut staged = Vec::new();
    for bench in bench_circuits::paper_suite() {
        let name = bench.circuit.name().to_string();
        let qasm = to_qasm(&bench.circuit);
        let circuit = parse_qasm(&qasm, &name).expect("suite QASM round-trips");
        staged.push(preprocess(&circuit));
        entries.push(CircuitEntry { name, qasm });
    }
    (entries, staged)
}

/// Drains one request into (entry index → output), asserting every entry
/// succeeded and the terminal `Done` agrees.
fn serve_suite(
    service: &Service,
    request: Request,
) -> HashMap<usize, zac::compiler::CompileOutput> {
    let expected = request.circuits.len();
    let mut outputs = HashMap::new();
    for response in service.submit(request) {
        match response {
            Response::Result { entry, name, outcome, .. } => {
                let out = outcome.output().unwrap_or_else(|| panic!("{name} compiles")).clone();
                assert!(outputs.insert(entry, out).is_none(), "{name} reported once");
            }
            Response::Done(done) => {
                assert_eq!((done.ok, done.rejected, done.failed), (expected, 0, 0));
            }
            other => panic!("unexpected response: {other:?}"),
        }
    }
    assert_eq!(outputs.len(), expected);
    outputs
}

#[test]
fn served_suite_is_bit_identical_to_direct_and_batch_runs() {
    let (entries, staged) = suite();
    assert_eq!(entries.len(), 17, "the full paper suite");

    // One service; the windowed run exercises the request-side engine
    // override. The injected cache is shared with the BatchRunner below.
    let cache = CompileCache::in_memory(256);
    let service = Service::new(ServiceConfig {
        workers: 4,
        zac_config: engine_config(&PlacementEngine::Exhaustive),
        cache: cache.clone(),
        ..Default::default()
    });

    let engines = [
        ("exhaustive", None, PlacementEngine::Exhaustive),
        ("windowed", Some("windowed"), PlacementEngine::windowed()),
    ];
    let mut served: Vec<HashMap<usize, zac::compiler::CompileOutput>> = Vec::new();
    for (label, engine_override, engine) in &engines {
        let mut request = Request::new(format!("suite-{label}"), "Zoned-ZAC", entries.clone());
        request.engine = engine_override.map(str::to_string);
        let outputs = serve_suite(&service, request);

        // Fresh compiles: semantically bit-identical to direct compiles of
        // the same staged circuits under the same configuration.
        let zac = Zac::with_config(Architecture::reference(), engine_config(engine));
        for (index, circuit) in staged.iter().enumerate() {
            let direct = Compiler::compile(&zac, circuit)
                .unwrap_or_else(|e| panic!("{}: {e}", circuit.name));
            let out = &outputs[&index];
            assert!(!out.from_cache, "{label}/{}: cold wave compiles fresh", circuit.name);
            assert_eq!(
                out.semantic_json(),
                direct.semantic_json(),
                "{label}/{}: served output diverges from the direct compile",
                circuit.name
            );
        }
        served.push(outputs);
    }

    // Warm wave (exhaustive): responses must be byte-identical to the cold
    // wave modulo the cache-hit flag — hits preserve original timings.
    let warm = serve_suite(&service, Request::new("warm", "Zoned-ZAC", entries.clone()));
    for (index, cold_out) in &served[0] {
        let mut warm_out = warm[index].clone();
        assert!(warm_out.from_cache, "warm wave is served from cache");
        warm_out.from_cache = false;
        assert_eq!(
            serde_json::to_string(&warm_out).unwrap(),
            serde_json::to_string(cold_out).unwrap(),
            "entry {index}: warm response must be byte-identical modulo from_cache"
        );
    }

    // A direct BatchRunner sweep over the same cache: every cell is a hit
    // of what serving compiled, and the figures-facing fields agree.
    let compilers: Vec<Box<dyn Compiler>> = engines
        .iter()
        .map(|(_, _, engine)| {
            Box::new(Zac::with_config(Architecture::reference(), engine_config(engine)))
                as Box<dyn Compiler>
        })
        .collect();
    let rows = BatchRunner::serial().with_cache(cache.clone()).run(&compilers, &staged);
    assert_eq!(rows.len(), staged.len());
    for (index, row) in rows.iter().enumerate() {
        assert!(row.failures.is_empty(), "{}: {:?}", row.name, row.failures);
        assert_eq!(row.results.len(), engines.len());
        for (engine_idx, result) in row.results.iter().enumerate() {
            let out = &served[engine_idx][&index];
            assert!(result.from_cache, "{}: the sweep reuses served compilations", row.name);
            assert_eq!(result.report, out.report, "{}: fidelity agrees", row.name);
            assert_eq!(result.counts, out.counts, "{}: counts agree", row.name);
        }
    }
    let stats = cache.stats();
    assert_eq!(stats.misses as usize, 2 * staged.len(), "one miss per engine per circuit, ever");
}
