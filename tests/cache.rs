//! Facade-level integration tests of the caching subsystem: fingerprints,
//! `CachedCompiler`, the disk layer, and cached `BatchRunner` sweeps all
//! driven through the public `zac::` API exactly as a downstream user
//! would.

use zac::bench::{default_compilers, BatchRunner};
use zac::circuit::{bench_circuits, preprocess, StagedCircuit};
use zac::prelude::*;

fn probes() -> Vec<StagedCircuit> {
    vec![preprocess(&bench_circuits::ghz(8)), preprocess(&bench_circuits::ising(12))]
}

#[test]
fn cached_compiler_is_transparent_through_the_facade() {
    let cache = CompileCache::in_memory(64);
    let bare = Zac::new(Architecture::reference());
    let cached = CachedCompiler::new(bare.clone(), cache.clone());
    // Identity forwards: a cached and an uncached instance share keys.
    assert_eq!(Compiler::fingerprint(&cached), Compiler::fingerprint(&bare));
    assert_eq!(cached.name(), bare.name());

    for staged in probes() {
        let cold = cached.compile(&staged).unwrap();
        let warm = cached.compile(&staged).unwrap();
        let reference = Compiler::compile(&bare, &staged).unwrap();
        assert!(!cold.from_cache && warm.from_cache, "{}", staged.name);
        assert_eq!(warm.report, reference.report, "{}", staged.name);
        assert_eq!(warm.summary, reference.summary, "{}", staged.name);
        assert_eq!(warm.compile_time, cold.compile_time, "{}: original timing", staged.name);
    }
    let stats = cache.stats();
    assert_eq!((stats.hits, stats.misses), (2, 2));
    assert!(stats.hit_rate() > 0.49 && stats.hit_rate() < 0.51);
}

#[test]
fn cached_sweep_matches_uncached_sweep() {
    let suite = probes();
    let compilers = default_compilers();
    let cache = CompileCache::in_memory(256);
    let plain = BatchRunner::parallel().run(&compilers, &suite);
    let cached_cold = BatchRunner::parallel().with_cache(cache.clone()).run(&compilers, &suite);
    let cached_warm = BatchRunner::serial().with_cache(cache.clone()).run(&compilers, &suite);
    for ((p, c), w) in plain.iter().zip(&cached_cold).zip(&cached_warm) {
        assert_eq!(p.results.len(), c.results.len());
        assert_eq!(p.results.len(), w.results.len());
        for ((pr, cr), wr) in p.results.iter().zip(&c.results).zip(&w.results) {
            assert_eq!(pr.report, cr.report, "{} / {}", p.name, pr.compiler);
            assert_eq!(pr.report, wr.report, "{} / {}", p.name, pr.compiler);
            assert!(!cr.from_cache && wr.from_cache);
        }
    }
    assert_eq!(cache.stats().hits, (suite.len() * compilers.len()) as u64);
}

#[test]
fn disk_cache_round_trips_through_the_facade() {
    let dir = std::env::temp_dir().join(format!("zac-facade-cache-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let staged = preprocess(&bench_circuits::bv(10, 9));
    let first;
    {
        let cache = CompileCache::with_disk(16, &dir).unwrap();
        let zac = CachedCompiler::new(Zac::new(Architecture::reference()), cache);
        first = zac.compile(&staged).unwrap();
    }
    let cache = CompileCache::with_disk(16, &dir).unwrap();
    let zac = CachedCompiler::new(Zac::new(Architecture::reference()), cache.clone());
    let revived = zac.compile(&staged).unwrap();
    assert!(revived.from_cache, "fresh cache warms from disk");
    assert_eq!(revived.report, first.report);
    assert_eq!(revived.summary, first.summary);
    assert_eq!(revived.compile_time, first.compile_time);
    assert_eq!(cache.stats().disk_hits, 1);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cache_key_reachable_from_prelude() {
    let staged = preprocess(&bench_circuits::ghz(6));
    let zac = Zac::new(Architecture::reference());
    let key = CacheKey::compute(&zac, &staged);
    assert_eq!(key.circuit, staged.fingerprint());
    assert_eq!(key.compiler, Compiler::fingerprint(&zac));
    assert_eq!(key.file_stem().len(), 33); // 16 + '-' + 16
}
