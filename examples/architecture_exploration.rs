//! Architecture exploration: vary the AOD count and the entanglement-zone
//! layout, as in the paper's Sec. VII-G/H experiments.
//!
//! Run with: `cargo run --example architecture_exploration`

use zac::circuit::{bench_circuits, preprocess};
use zac::prelude::*;

fn main() -> Result<(), zac::Error> {
    let staged = preprocess(&bench_circuits::ising(98));
    println!("workload: {}\n", staged);

    println!("--- AOD count sweep (reference architecture) ---");
    println!("{:>6}{:>14}{:>14}", "AODs", "fidelity", "duration(ms)");
    for k in 1..=4 {
        let arch = Architecture::reference().with_num_aods(k);
        let out = Zac::new(arch).compile_staged(&staged)?;
        println!("{k:>6}{:>14.4}{:>14.2}", out.total_fidelity(), out.summary.duration_us / 1000.0);
    }

    println!("\n--- zone layout comparison (small architectures, Sec. VII-H) ---");
    for (label, arch) in [
        ("Arch1: one 6x10-site zone", Architecture::arch1_small()),
        ("Arch2: two 3x10-site zones", Architecture::arch2_two_zones()),
    ] {
        let out = Zac::new(arch).compile_staged(&staged)?;
        println!(
            "{label:<30} fidelity {:.4}, duration {:.2} ms",
            out.total_fidelity(),
            out.summary.duration_us / 1000.0
        );
    }

    println!("\n--- custom architecture from the paper's JSON spec format ---");
    let json = Architecture::reference().to_spec_json();
    let parsed = Architecture::from_spec_json(&json)?;
    println!(
        "round-tripped '{}': {} sites, {} storage traps",
        parsed.name(),
        parsed.num_sites(),
        parsed.storage_capacity()
    );
    Ok(())
}
