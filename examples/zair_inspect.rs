//! ZAIR inspection: compile bv_n14 and dump the first instructions in the
//! paper's JSON format (cf. Fig. 19 / Appendix H).
//!
//! Run with: `cargo run --example zair_inspect`

use zac::circuit::bench_circuits;
use zac::prelude::*;
use zac::zair::Instruction;

fn main() -> Result<(), zac::Error> {
    let zac = Zac::new(Architecture::reference());
    let out = zac.compile(&bench_circuits::bv(14, 13))?;

    let stats = out.program.stats();
    println!(
        "bv_n14 compiled: {} ZAIR instructions, {} machine-level, {} jobs\n",
        stats.zair_instructions, stats.machine_instructions, stats.jobs
    );

    // Print the init, the first rearrangement job, and the first exposure —
    // the same excerpt the paper's Fig. 19 shows.
    let mut shown_job = false;
    let mut shown_ryd = false;
    for inst in &out.program.instructions {
        match inst {
            Instruction::Init { init_locs } => {
                println!(
                    "init: q0 at (slm {}, r{}, c{}), ..., q13 at (slm {}, r{}, c{})",
                    init_locs[0].slm_id,
                    init_locs[0].row,
                    init_locs[0].col,
                    init_locs[13].slm_id,
                    init_locs[13].row,
                    init_locs[13].col
                );
            }
            Instruction::RearrangeJob(_) if !shown_job => {
                shown_job = true;
                println!("\nfirst rearrangement job:");
                println!("{}", serde_json::to_string_pretty(inst)?);
            }
            Instruction::Rydberg { .. } if !shown_ryd => {
                shown_ryd = true;
                println!("\nfirst Rydberg exposure:");
                println!("{}", serde_json::to_string_pretty(inst)?);
            }
            _ => {}
        }
        if shown_job && shown_ryd {
            break;
        }
    }

    // The full program round-trips through JSON.
    let json = out.program.to_json()?;
    let back = zac::zair::Program::from_json(&json)?;
    assert_eq!(back, out.program);
    println!("\nfull program JSON: {} bytes (round-trip verified)", json.len());
    Ok(())
}
