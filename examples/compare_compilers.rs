//! Compare ZAC against every baseline of the paper on one circuit, driving
//! all six compilers through the unified `Compiler` trait.
//!
//! Run with: `cargo run --example compare_compilers [circuit]`
//! where `circuit` is one of: bv, ghz, ising, qft (default: bv).

use zac::bench::default_compilers;
use zac::circuit::{bench_circuits, preprocess};

fn main() -> Result<(), zac::Error> {
    let which = std::env::args().nth(1).unwrap_or_else(|| "bv".into());
    let circuit = match which.as_str() {
        "ghz" => bench_circuits::ghz(40),
        "ising" => bench_circuits::ising(42),
        "qft" => bench_circuits::qft(18),
        _ => bench_circuits::bv(70, 36),
    };
    println!("circuit: {circuit}\n");
    let staged = preprocess(&circuit);

    println!(
        "{:<24}{:>12}{:>12}{:>10}{:>10}{:>14}",
        "compiler", "fidelity", "duration", "g2", "N_exc", "N_tran"
    );
    for compiler in default_compilers() {
        match compiler.compile(&staged) {
            Ok(out) => {
                let dur_us = out.summary.duration_us;
                let dur = if dur_us > 1000.0 {
                    format!("{:.2}ms", dur_us / 1000.0)
                } else {
                    format!("{dur_us:.2}us")
                };
                println!(
                    "{:<24}{:>12.4e}{dur:>12}{:>10}{:>10}{:>14}",
                    compiler.name(),
                    out.total_fidelity(),
                    out.counts.g2,
                    out.counts.n_exc,
                    out.counts.n_tran
                );
            }
            Err(e) => println!("{:<24}  skipped: {e}", compiler.name()),
        }
    }
    Ok(())
}
