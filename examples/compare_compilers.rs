//! Compare ZAC against every baseline of the paper on one circuit.
//!
//! Run with: `cargo run --example compare_compilers [circuit]`
//! where `circuit` is one of: bv, ghz, ising, qft (default: bv).

use zac::baselines::{compile_atomique, compile_enola, compile_nalac, compile_sc, ScMachine};
use zac::circuit::{bench_circuits, preprocess};
use zac::prelude::*;
use zac_fidelity::NeutralAtomParams;

fn main() -> Result<(), zac::Error> {
    let which = std::env::args().nth(1).unwrap_or_else(|| "bv".into());
    let circuit = match which.as_str() {
        "ghz" => bench_circuits::ghz(40),
        "ising" => bench_circuits::ising(42),
        "qft" => bench_circuits::qft(18),
        _ => bench_circuits::bv(70, 36),
    };
    println!("circuit: {circuit}\n");
    let staged = preprocess(&circuit);
    let params = NeutralAtomParams::reference();

    println!(
        "{:<24}{:>12}{:>12}{:>10}{:>10}{:>14}",
        "compiler", "fidelity", "duration", "g2", "N_exc", "N_tran"
    );
    let print_row = |name: &str, f: f64, dur_us: f64, g2: usize, exc: usize, tran: usize| {
        let dur = if dur_us > 1000.0 {
            format!("{:.2}ms", dur_us / 1000.0)
        } else {
            format!("{dur_us:.2}us")
        };
        println!("{name:<24}{f:>12.4e}{dur:>12}{g2:>10}{exc:>10}{tran:>14}");
    };

    if let Ok(r) = compile_sc(&staged, ScMachine::Heron) {
        let s = &r.summary;
        print_row("SC-Heron", r.report.total(), s.duration_us, s.g2, s.n_exc, s.n_tran);
    }
    if let Ok(r) = compile_sc(&staged, ScMachine::Grid) {
        let s = &r.summary;
        print_row("SC-Grid", r.report.total(), s.duration_us, s.g2, s.n_exc, s.n_tran);
    }
    let r = compile_atomique(&staged, 10, 10, &params);
    let s = &r.summary;
    print_row("Monolithic-Atomique", r.report.total(), s.duration_us, s.g2, s.n_exc, s.n_tran);
    if let Ok(r) = compile_enola(&staged, 10, 10, &params) {
        let s = &r.summary;
        print_row("Monolithic-Enola", r.report.total(), s.duration_us, s.g2, s.n_exc, s.n_tran);
    }
    let r = compile_nalac(&staged, 20, &params);
    let s = &r.summary;
    print_row("Zoned-NALAC", r.report.total(), s.duration_us, s.g2, s.n_exc, s.n_tran);

    let zac = Zac::new(Architecture::reference());
    let out = zac.compile_staged(&staged)?;
    let s = &out.summary;
    print_row("Zoned-ZAC", out.total_fidelity(), s.duration_us, s.g2, s.n_exc, s.n_tran);

    Ok(())
}
