//! Drive the compile service in-process: submit the 17-circuit paper suite
//! as OpenQASM, stream per-entry results as workers finish them, then
//! resubmit the identical batch to show the warm wave served entirely from
//! the shared cache.
//!
//! Run with: `cargo run --release --example serve_demo`
//! Set `ZAC_TELEMETRY=1` to also print the request's metrics delta.

use zac::circuit::bench_circuits;
use zac::circuit::qasm::to_qasm;
use zac::serve::{CircuitEntry, EntryOutcome, Request, Response, Service, ServiceConfig};

fn suite_request(id: &str) -> Request {
    let circuits = bench_circuits::paper_suite()
        .iter()
        .map(|bench| CircuitEntry {
            name: bench.circuit.name().to_string(),
            qasm: to_qasm(&bench.circuit),
        })
        .collect();
    Request::new(id, "Zoned-ZAC", circuits)
}

fn run_wave(service: &Service, id: &str) {
    println!("── wave `{id}` ──");
    for response in service.submit(suite_request(id)) {
        match response {
            Response::Result { name, outcome, .. } => match outcome {
                EntryOutcome::Ok(out) => println!(
                    "  {name:<18} fidelity {:.4}  2q {:>4}  {:>9.2?}{}",
                    out.report.total(),
                    out.counts.g2,
                    out.compile_time,
                    if out.from_cache { "  (cache hit)" } else { "" }
                ),
                EntryOutcome::Rejected(reason) => println!("  {name:<18} rejected: {reason}"),
                EntryOutcome::Failed(reason) => println!("  {name:<18} FAILED: {reason}"),
            },
            Response::Done(done) => {
                println!(
                    "  done: ok {} / rejected {} / failed {} in {} ms (place {:.2} ms, schedule {:.2} ms)",
                    done.ok,
                    done.rejected,
                    done.failed,
                    done.latency_ms,
                    done.phase_totals.place_ns as f64 / 1e6,
                    done.phase_totals.schedule_ns as f64 / 1e6,
                );
                if let Some(metrics) = &done.metrics {
                    println!("  metrics delta: {}", serde_json::to_string(metrics).unwrap());
                }
            }
            Response::Rejected { reason, .. } => println!("  request rejected: {reason}"),
            Response::Error { reason, .. } => println!("  request error: {reason}"),
        }
    }
}

fn main() {
    let service = Service::new(ServiceConfig::default());
    run_wave(&service, "cold");
    run_wave(&service, "warm");
    let stats = service.cache().stats();
    println!(
        "cache: {} lookups, {} hits, {} misses — hit rate {:.0}%",
        stats.lookups(),
        stats.hits,
        stats.misses,
        stats.hit_rate() * 100.0
    );
}
