//! Quickstart: compile a GHZ circuit with ZAC on the reference zoned
//! architecture and print the fidelity report.
//!
//! Run with: `cargo run --example quickstart`

use zac::prelude::*;

fn main() -> Result<(), zac::Error> {
    // The reference architecture of the paper's Fig. 2: a 100×100 storage
    // zone, a 7×20-site entanglement zone, one AOD.
    let arch = Architecture::reference();

    // A 23-qubit GHZ state preparation from the benchmark suite.
    let circuit = bench_circuits::ghz(23);
    println!("circuit: {circuit}");

    // Compile with the full pipeline: SA initial placement, dynamic
    // reuse-aware placement, load-balanced scheduling.
    let zac = Zac::new(arch);
    let out = zac.compile(&circuit)?;

    println!("compiled in {:?}", out.compile_time);
    println!("  Rydberg stages : {}", out.plan.stages.len());
    println!("  reused qubits  : {}", out.plan.total_reused_qubits());
    println!("  2Q gates       : {}", out.summary.g2);
    println!("  1Q gates       : {}", out.summary.g1);
    println!("  atom transfers : {}", out.summary.n_tran);
    println!("  idle excitation: {} (zoned architectures shield idle qubits)", out.summary.n_exc);
    println!("  duration       : {:.2} ms", out.summary.duration_us / 1000.0);
    println!();
    println!("fidelity breakdown:");
    println!("  1Q          {:.4}", out.report.one_q);
    println!("  2Q          {:.4}", out.report.two_q);
    println!("  transfer    {:.4}", out.report.transfer);
    println!("  decoherence {:.4}", out.report.decoherence);
    println!("  total       {:.4}", out.total_fidelity());

    Ok(())
}
