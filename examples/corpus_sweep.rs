//! Sweep an OpenQASM corpus directory across the full compiler lineup.
//!
//! Run with: `cargo run --release --example corpus_sweep [dir]`
//! (default directory: `tests/corpus`, the bundled QASMBench-style
//! mini-corpus).
//!
//! Load failures and per-cell compile failures are reported as values —
//! the sweep never panics on a bad file — and the parallel sweep is
//! verified bit-identical to a serial rerun through the shared cache.
//!
//! With `ZAC_TELEMETRY=1` the sweep also prints the telemetry counter
//! snapshot accumulated across both passes (and asserts every pipeline
//! namespace reported in), and `ZAC_TRACE_OUT=<path>` additionally dumps
//! the recorded span tree as a Chrome-trace JSON file.

use zac::bench::{
    compiler_geomean, corpus::load_corpus, default_compilers, BatchRunner, COMPILERS,
};
use zac::cache::CompileCache;

fn main() -> Result<(), zac::Error> {
    let dir = std::env::args().nth(1).unwrap_or_else(|| "tests/corpus".into());
    let corpus = load_corpus(&dir);
    println!(
        "corpus {dir}: {} circuit(s) loaded, {} load failure(s)",
        corpus.entries.len(),
        corpus.failures.len()
    );
    for f in &corpus.failures {
        println!("  load failure: {}: {}", f.file, f.reason);
    }
    if corpus.is_empty() {
        println!("nothing to sweep");
        return Ok(());
    }

    let suite = corpus.suite();
    let compilers = default_compilers();
    let cache = CompileCache::in_memory(1024);
    let rows = BatchRunner::parallel().with_cache(cache.clone()).run(&compilers, &suite);

    println!(
        "\n{:<16}{:>7}{:>6}{:>6}{}",
        "circuit",
        "qubits",
        "g2",
        "g1",
        COMPILERS.iter().map(|c| format!("{c:>21}")).collect::<String>()
    );
    for row in &rows {
        let mut line =
            format!("{:<16}{:>7}{:>6}{:>6}", row.name, row.qubits, row.gates.0, row.gates.1);
        for compiler in COMPILERS {
            match row.result(compiler) {
                Some(r) => line.push_str(&format!("{:>21.4e}", r.fidelity())),
                None => line.push_str(&format!("{:>21}", "-")),
            }
        }
        println!("{line}");
    }

    let mut line = format!("{:<16}{:>7}{:>6}{:>6}", "geomean", "", "", "");
    for compiler in COMPILERS {
        line.push_str(&format!("{:>21.4e}", compiler_geomean(&rows, compiler, |r| r.fidelity())));
    }
    println!("{line}");

    // Failures are values on the rows, not panics or stderr scrapes.
    let failures: Vec<_> =
        rows.iter().flat_map(|r| r.failures.iter().map(move |f| (r, f))).collect();
    if failures.is_empty() {
        println!("\ncompile failures: none");
    } else {
        println!("\ncompile failures:");
        for (row, f) in failures {
            println!("  {} / {}: {}", row.name, f.compiler, f.reason);
        }
    }

    // Determinism: a serial rerun through the shared cache must reproduce
    // the parallel sweep bit-for-bit (cache hits carry original timings).
    let serial = BatchRunner::serial().with_cache(cache.clone()).run(&compilers, &suite);
    let mut identical = rows.len() == serial.len();
    for (p, s) in rows.iter().zip(&serial) {
        identical &= p.name == s.name && p.results.len() == s.results.len();
        for (pr, sr) in p.results.iter().zip(&s.results) {
            identical &= pr.compiler == sr.compiler
                && pr.report == sr.report
                && pr.counts == sr.counts
                && pr.compile_secs.to_bits() == sr.compile_secs.to_bits();
        }
    }
    assert!(identical, "parallel sweep must be bit-identical to the serial rerun");
    println!(
        "parallel == serial: OK ({} cells, cache hit rate {:.0}%)",
        rows.len() * compilers.len(),
        cache.stats().hit_rate() * 100.0
    );

    if zac::telemetry::enabled() {
        report_telemetry()?;
    }
    Ok(())
}

/// Prints the telemetry snapshot for the whole sweep, asserts that every
/// pipeline namespace recorded counters (the CI smoke contract), and
/// optionally exports the span tree as a Chrome trace.
fn report_telemetry() -> Result<(), zac::Error> {
    let snapshot = zac::telemetry::MetricsSnapshot::capture();
    println!("\ntelemetry counters:");
    for ns in ["core.", "circuit.", "place.", "schedule.", "cache."] {
        let sum = snapshot.counter_sum_with_prefix(ns);
        assert!(sum > 0, "telemetry enabled but namespace '{ns}' recorded no counters");
        println!("  {ns:<12}{sum:>12}");
    }

    let spans = zac::telemetry::take_spans();
    println!("telemetry spans: {} recorded", spans.len());
    if let Ok(path) = std::env::var("ZAC_TRACE_OUT") {
        std::fs::write(&path, zac::telemetry::chrome_trace_json(&spans))?;
        println!("wrote {path}");
    }
    Ok(())
}
