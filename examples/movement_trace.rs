//! Replay a compiled program as ASCII placement frames, and cross-check the
//! analytic fidelity with the Monte Carlo error sampler.
//!
//! Run with: `cargo run --example movement_trace`

use zac::fidelity::monte_carlo::sample_fidelity;
use zac::fidelity::NeutralAtomParams;
use zac::prelude::*;
use zac::zair::render::{render_placement, replay_frames};

fn main() -> Result<(), zac::Error> {
    let arch = Architecture::reference();
    let circuit = zac::circuit::bench_circuits::ghz(8);
    let out = Zac::new(arch.clone()).compile(&circuit)?;

    // Replay: show the first few placement frames.
    let frames = replay_frames(&arch, &out.program);
    println!("{} placement frames; showing the first three:\n", frames.len());
    for frame in frames.iter().take(3) {
        println!(
            "--- frame @ instruction {} ({}), t = {:.1} us ---",
            frame.instruction_index, frame.kind, frame.time_us
        );
        println!("{}", render_placement(&arch, &frame.locations));
    }

    // Monte Carlo cross-check of the analytic fidelity model.
    let params = NeutralAtomParams::reference();
    let est = sample_fidelity(&out.summary, &params, 20_000, 7);
    println!("analytic fidelity    : {:.4}", out.total_fidelity());
    println!(
        "monte carlo estimate : {:.4} ± {:.4} ({} shots)",
        est.fidelity(),
        est.std_error(),
        est.shots
    );
    println!("dominant error class : {}", est.budget.dominant());
    Ok(())
}
