//! FTQC case study: compile the hypercube IQP workload on [[8,3,2]] code
//! blocks (paper Sec. VIII).
//!
//! Run with: `cargo run --release --example ftqc_hiqp`

use zac::ftqc::{compile_hiqp, hiqp_block_circuit, Code832};

fn main() -> Result<(), zac::Error> {
    // The code block: 8 physical qubits on a cube encode 3 logical qubits.
    let code = Code832::new();
    println!("[[8,3,2]] code:");
    println!("  stabilizer rank : {}", code.stabilizers().rank());
    for i in 0..3 {
        println!(
            "  logical {i}: |X̄| = {}, |Z̄| = {}",
            code.logical_x(i).weight(),
            code.logical_z(i).weight()
        );
    }

    // The paper-scale workload: 128 blocks, 384 logical qubits.
    let block_circuit = hiqp_block_circuit(128);
    println!("\nhIQP block circuit: {block_circuit}");

    let r = compile_hiqp(128)?;
    println!("\ncompiled with ZAC on the 3×5-site logical architecture:");
    println!("  Rydberg stages : {} (paper: 35)", r.rydberg_stages);
    println!("  duration       : {:.3} ms (paper: 117.847 ms)", r.duration_ms);
    println!("  transfers      : {}", r.output.summary.n_tran);
    println!("  block fidelity : {:.4}", r.output.total_fidelity());
    Ok(())
}
