//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// Length specifications accepted by [`vec`] and
/// [`crate::sample::subsequence`].
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl SizeRange {
    pub(crate) fn pick(&self, rng: &mut TestRng) -> usize {
        rng.rng.gen_range(self.lo..=self.hi_inclusive)
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self { lo: r.start, hi_inclusive: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        Self { lo: *r.start(), hi_inclusive: *r.end() }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi_inclusive: n }
    }
}

/// Strategy producing `Vec`s whose length is drawn from `size` and whose
/// elements are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
