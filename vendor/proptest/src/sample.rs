//! Sampling strategies (`proptest::sample::subsequence`).

use crate::collection::SizeRange;
use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Strategy producing random subsequences of `items` (order-preserving
/// subsets) whose length is drawn from `size`.
pub fn subsequence<T: Clone>(items: Vec<T>, size: impl Into<SizeRange>) -> Subsequence<T> {
    Subsequence { items, size: size.into() }
}

/// See [`subsequence`].
pub struct Subsequence<T: Clone> {
    items: Vec<T>,
    size: SizeRange,
}

impl<T: Clone> Strategy for Subsequence<T> {
    type Value = Vec<T>;

    fn sample(&self, rng: &mut TestRng) -> Vec<T> {
        let n = self.items.len();
        let len = self.size.pick(rng).min(n);
        // Partial Fisher–Yates over the index set, then restore input order.
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..len {
            let j = rng.rng.gen_range(i..n.max(1));
            idx.swap(i, j);
        }
        let mut chosen: Vec<usize> = idx[..len].to_vec();
        chosen.sort_unstable();
        chosen.into_iter().map(|i| self.items[i].clone()).collect()
    }
}
