//! The [`Strategy`] trait and combinators (no shrinking).

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A generator of random values of type `Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { base: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { base: self, f }
    }

    /// Type-erases the strategy (needed by [`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe sampling, used by [`BoxedStrategy`].
trait DynStrategy<T> {
    fn sample_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.sample(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample_dyn(rng)
    }
}

/// `prop_map` combinator.
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(self.base.sample(rng))
    }
}

/// `prop_flat_map` combinator.
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.base.sample(rng)).sample(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Weighted union of same-valued strategies (see [`crate::prop_oneof!`]).
pub struct Union<T> {
    variants: Vec<(u32, BoxedStrategy<T>)>,
}

impl<T> Union<T> {
    /// Builds a union; weights must not all be zero.
    pub fn new(variants: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!variants.is_empty(), "empty prop_oneof!");
        assert!(variants.iter().any(|(w, _)| *w > 0), "all prop_oneof! weights zero");
        Self { variants }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let total: u32 = self.variants.iter().map(|(w, _)| w).sum();
        let mut pick = rng.rng.gen_range(0..total);
        for (w, s) in &self.variants {
            if pick < *w {
                return s.sample(rng);
            }
            pick -= w;
        }
        unreachable!("weighted pick out of range")
    }
}

macro_rules! impl_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut TestRng) -> $ty {
                rng.rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut TestRng) -> $ty {
                rng.rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(usize, u64, u32);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        rng.rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// The strategy type `any::<Self>()` returns.
    type Strategy: Strategy<Value = Self>;

    /// The canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Samples the type's full natural domain.
pub struct Any<T>(std::marker::PhantomData<T>);

impl Strategy for Any<bool> {
    type Value = bool;

    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.rng.gen()
    }
}

impl Arbitrary for bool {
    type Strategy = Any<bool>;

    fn arbitrary() -> Any<bool> {
        Any(std::marker::PhantomData)
    }
}

impl Strategy for Any<u64> {
    type Value = u64;

    fn sample(&self, rng: &mut TestRng) -> u64 {
        rng.rng.gen()
    }
}

impl Arbitrary for u64 {
    type Strategy = Any<u64>;

    fn arbitrary() -> Any<u64> {
        Any(std::marker::PhantomData)
    }
}

impl Strategy for Any<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        // Finite floats across a broad magnitude range (no NaN/inf).
        let mag: f64 = rng.rng.gen_range(-300.0..300.0);
        let sign = if rng.rng.gen::<bool>() { 1.0 } else { -1.0 };
        sign * rng.rng.gen::<f64>() * 10f64.powf(mag / 10.0)
    }
}

impl Arbitrary for f64 {
    type Strategy = Any<f64>;

    fn arbitrary() -> Any<f64> {
        Any(std::marker::PhantomData)
    }
}

/// The canonical strategy for `T` (`any::<bool>()` etc.).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}
