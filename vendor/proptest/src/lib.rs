//! In-tree stand-in for the `proptest` crate (the build environment has no
//! network access). Covers the API surface the workspace's property tests
//! use: the [`strategy::Strategy`] trait with `prop_map` / `prop_flat_map`,
//! range and tuple strategies, `Just`, weighted `prop_oneof!`,
//! `collection::vec`, `sample::subsequence`, `any::<T>()`, and the
//! [`proptest!`] macro with `#![proptest_config(...)]` support.
//!
//! Differences from upstream: cases are generated from a fixed per-test seed
//! (derived from the test name), there is **no shrinking**, and failures
//! panic directly via `assert!`-family macros. Deterministic across runs.

pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

pub use strategy::{any, Arbitrary, Just, Strategy};
pub use test_runner::ProptestConfig;

/// Commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Asserts a condition inside a property test (panics on failure; the stub
/// does not shrink).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Skips the current case when its inputs don't meet a precondition.
/// Expands to an early `return` from the per-case closure the [`proptest!`]
/// macro wraps each body in.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

/// Union of strategies with the same value type, optionally weighted:
/// `prop_oneof![a, b]` or `prop_oneof![3 => a, 1 => b]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Declares property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that samples its strategies `config.cases` times from
/// a deterministic per-test RNG and runs the body on each sample.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr;
     $($(#[$meta:meta])*
       fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for _case in 0..config.cases {
                    $(let $pat = $crate::strategy::Strategy::sample(&($strat), &mut rng);)*
                    // The closure gives `prop_assume!` an early-exit target.
                    #[allow(unused_mut)]
                    let mut case = || $body;
                    case();
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in -2.0..5.0f64) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..5.0).contains(&y));
        }

        #[test]
        fn tuples_and_maps((a, b) in (0usize..5, 0usize..5), flag in any::<bool>()) {
            let sum = (0usize..10).prop_map(move |c| a + b + c);
            let s = Strategy::sample(&sum, &mut crate::test_runner::TestRng::for_test("inner"));
            prop_assert!(s >= a + b);
            let _ = flag;
        }

        #[test]
        fn flat_map_vec_lengths(v in (1usize..6).prop_flat_map(|n| crate::collection::vec(0usize..10, n..=n))) {
            prop_assert!((1..6).contains(&v.len()));
        }

        #[test]
        fn oneof_weighted(x in prop_oneof![3 => 0usize..5, 1 => 100usize..105]) {
            prop_assert!(x < 5 || (100..105).contains(&x));
        }

        #[test]
        fn assume_skips(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn subsequence_is_ordered_subset() {
        let mut rng = crate::test_runner::TestRng::for_test("subseq");
        let items: Vec<usize> = (0..20).collect();
        for _ in 0..100 {
            let s = crate::sample::subsequence(items.clone(), 0..=items.len());
            let sub = Strategy::sample(&s, &mut rng);
            assert!(sub.windows(2).all(|w| w[0] < w[1]), "{sub:?} not ordered");
            assert!(sub.iter().all(|x| items.contains(x)));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let sample = |seed_name: &str| {
            let mut rng = crate::test_runner::TestRng::for_test(seed_name);
            Strategy::sample(&crate::collection::vec(0usize..1000, 5..10), &mut rng)
        };
        assert_eq!(sample("a"), sample("a"));
        assert_ne!(sample("a"), sample("b"));
    }
}
