//! Test configuration and the deterministic per-test RNG.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration for a [`crate::proptest!`] block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    /// 64 cases: smaller than upstream's 256 to keep suite runtime modest
    /// (these deterministic cases don't shrink, so reruns are cheap).
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// RNG handed to strategies; seeded deterministically from the test name so
/// every run (and every machine) sees the same cases.
pub struct TestRng {
    pub(crate) rng: StdRng,
}

impl TestRng {
    /// Creates the RNG for a named test.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the test name, mixed with a fixed tag.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        Self { rng: StdRng::seed_from_u64(h ^ 0x5AC5_AC5A_C5AC_5AC5) }
    }
}
