//! In-tree stand-in for the `rand` crate (the build environment has no
//! network access). Implements the 0.8-era API surface the workspace uses:
//! `rngs::StdRng`, `SeedableRng::seed_from_u64`, `Rng::gen::<f64>()` and
//! `Rng::gen_range(lo..hi)` for `usize` and `f64`.
//!
//! The generator is xoshiro256** seeded via SplitMix64 — a different stream
//! than upstream's ChaCha12, but the workspace only relies on determinism
//! per seed, not on a specific stream.

use std::ops::Range;

pub mod rngs {
    /// The workspace's standard RNG: xoshiro256** (deterministic per seed).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }
}

use rngs::StdRng;

/// Seeding support (subset of rand's `SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates an RNG deterministically from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // All-zero state would be a fixed point; splitmix64 cannot produce
        // four zeros from any seed, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 1;
        }
        Self { s }
    }
}

/// Raw 64-bit output (subset of rand_core's `RngCore`).
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Sampling from the "standard" distribution (uniform over the type's
/// natural unit domain).
pub trait StandardSample: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// Ranges that can be sampled uniformly (subset of rand's `SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_uint_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "empty range in gen_range");
                let width = (self.end - self.start) as u64;
                // Modulo bias is negligible for the workspace's small widths.
                self.start + (rng.next_u64() % width) as $ty
            }
        }
        impl SampleRange<$ty> for std::ops::RangeInclusive<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let width = (hi - lo) as u64 + 1;
                lo + (rng.next_u64() % width) as $ty
            }
        }
    )*};
}

impl_sample_uint_range!(usize, u64, u32);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// The user-facing RNG trait (subset of rand's `Rng`).
pub trait Rng: RngCore {
    /// Draws from the standard distribution (`rng.gen::<f64>()` is uniform
    /// in `[0, 1)`).
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Draws `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn unit_float_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let i = rng.gen_range(0..5usize);
            seen[i] = true;
            let x = rng.gen_range(-2.0..3.0f64);
            assert!((-2.0..3.0).contains(&x));
            let j = rng.gen_range(2..=4usize);
            assert!((2..=4).contains(&j));
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit");
    }

    #[test]
    fn rough_uniformity() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mean = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
