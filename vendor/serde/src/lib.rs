//! In-tree stand-in for the `serde` crate.
//!
//! The build environment has no network access, so the real serde (and its
//! proc-macro derive) cannot be fetched. This crate provides the minimal
//! surface the workspace actually uses, built around an ordered JSON
//! [`Value`] model instead of serde's visitor architecture:
//!
//! * [`Serialize`] — converts a type into a [`Value`];
//! * [`Deserialize`] — reconstructs a type from a [`Value`];
//! * [`ObjectView`] — field-access helper for hand-written `Deserialize`
//!   impls (supports aliases, defaults and optional fields, mirroring the
//!   `#[serde(rename/alias/default)]` attributes the workspace used);
//! * [`impl_serde_struct!`] — generates both impls for plain structs with
//!   named fields (the moral equivalent of `#[derive(Serialize, Deserialize)]`).
//!
//! Swapping the real serde back in later only requires restoring the derive
//! attributes; the `serde_json` entry points (`to_string`, `to_string_pretty`,
//! `from_str`) keep their upstream signatures.

pub mod value;

pub use value::{Number, Value};

/// Serialization into the [`Value`] model. Infallible by construction: every
/// implementor maps onto a JSON-representable tree.
pub trait Serialize {
    /// Converts `self` into a JSON value.
    fn to_value(&self) -> Value;
}

/// Deserialization from the [`Value`] model.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a JSON value.
    ///
    /// # Errors
    ///
    /// [`DeError`] describing the first mismatch encountered.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Deserialization error: a human-readable description of the mismatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// Creates an error from any displayable message.
    pub fn msg(m: impl std::fmt::Display) -> Self {
        Self(m.to_string())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool().ok_or_else(|| DeError::msg(format!("expected bool, got {}", v.kind())))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| DeError::msg(format!("expected string, got {}", v.kind())))
    }
}

impl Serialize for &str {
    fn to_value(&self) -> Value {
        Value::String((*self).to_owned())
    }
}

macro_rules! impl_serde_float {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::Number(Number::from_f64(*self as f64))
            }
        }
        impl Deserialize for $ty {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                v.as_f64()
                    .map(|x| x as $ty)
                    .ok_or_else(|| DeError::msg(format!("expected number, got {}", v.kind())))
            }
        }
    )*};
}

impl_serde_float!(f32, f64);

/// Integers round-trip exactly through the `f64`-backed [`Number`] only up
/// to 2^53; larger magnitudes are rejected rather than silently saturated
/// by the `as` cast (a `1e300` in malformed input must not become
/// `usize::MAX`).
const INT_PRECISION_LIMIT: f64 = 9_007_199_254_740_992.0; // 2^53

macro_rules! impl_serde_uint {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::Number(Number::from_f64(*self as f64))
            }
        }
        impl Deserialize for $ty {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let x = v
                    .as_f64()
                    .ok_or_else(|| DeError::msg(format!("expected number, got {}", v.kind())))?;
                if x < 0.0 || x.fract() != 0.0 || !x.is_finite() {
                    return Err(DeError::msg(format!("expected unsigned integer, got {x}")));
                }
                if x > INT_PRECISION_LIMIT || x > <$ty>::MAX as f64 {
                    return Err(DeError::msg(format!("integer {x} out of range")));
                }
                Ok(x as $ty)
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::Number(Number::from_f64(*self as f64))
            }
        }
        impl Deserialize for $ty {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let x = v
                    .as_f64()
                    .ok_or_else(|| DeError::msg(format!("expected number, got {}", v.kind())))?;
                if x.fract() != 0.0 || !x.is_finite() {
                    return Err(DeError::msg(format!("expected integer, got {x}")));
                }
                if x.abs() > INT_PRECISION_LIMIT
                    || x > <$ty>::MAX as f64
                    || x < <$ty>::MIN as f64
                {
                    return Err(DeError::msg(format!("integer {x} out of range")));
                }
                Ok(x as $ty)
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, isize);

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::msg(format!("expected array, got {}", v.kind())))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let arr = v
            .as_array()
            .ok_or_else(|| DeError::msg(format!("expected 2-element array, got {}", v.kind())))?;
        if arr.len() != 2 {
            return Err(DeError::msg(format!(
                "expected 2-element array, got {} elements",
                arr.len()
            )));
        }
        Ok((A::from_value(&arr[0])?, B::from_value(&arr[1])?))
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value(), self.2.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let arr = v
            .as_array()
            .ok_or_else(|| DeError::msg(format!("expected 3-element array, got {}", v.kind())))?;
        if arr.len() != 3 {
            return Err(DeError::msg(format!(
                "expected 3-element array, got {} elements",
                arr.len()
            )));
        }
        Ok((A::from_value(&arr[0])?, B::from_value(&arr[1])?, C::from_value(&arr[2])?))
    }
}

// ---------------------------------------------------------------------------
// Object access for hand-written Deserialize impls
// ---------------------------------------------------------------------------

/// Read access to a JSON object, with the lookup policies that replace the
/// `#[serde(...)]` field attributes: exact key, key-with-alias, default on
/// missing, optional. Unknown fields are ignored, matching serde's default.
pub struct ObjectView<'a> {
    fields: &'a [(String, Value)],
}

impl<'a> ObjectView<'a> {
    /// Views `v` as an object.
    ///
    /// # Errors
    ///
    /// [`DeError`] if `v` is not a JSON object.
    pub fn new(v: &'a Value) -> Result<Self, DeError> {
        match v {
            Value::Object(fields) => Ok(Self { fields }),
            other => Err(DeError::msg(format!("expected object, got {}", other.kind()))),
        }
    }

    /// The raw value of `key`, if present.
    pub fn get(&self, key: &str) -> Option<&'a Value> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// A required field.
    ///
    /// # Errors
    ///
    /// [`DeError`] if the field is missing or has the wrong shape.
    pub fn field<T: Deserialize>(&self, key: &str) -> Result<T, DeError> {
        match self.get(key) {
            Some(v) => T::from_value(v).map_err(|e| DeError::msg(format!("field `{key}`: {e}"))),
            None => Err(DeError::msg(format!("missing field `{key}`"))),
        }
    }

    /// A required field that may appear under an alternate key
    /// (`#[serde(rename = key, alias = alias)]`).
    ///
    /// # Errors
    ///
    /// [`DeError`] if neither key is present or the value has the wrong shape.
    pub fn field_alias<T: Deserialize>(&self, key: &str, alias: &str) -> Result<T, DeError> {
        match self.get(key).or_else(|| self.get(alias)) {
            Some(v) => T::from_value(v).map_err(|e| DeError::msg(format!("field `{key}`: {e}"))),
            None => Err(DeError::msg(format!("missing field `{key}` (alias `{alias}`)"))),
        }
    }

    /// A field that defaults when missing (`#[serde(default)]`).
    ///
    /// # Errors
    ///
    /// [`DeError`] if the field is present but has the wrong shape.
    pub fn field_or_default<T: Deserialize + Default>(&self, key: &str) -> Result<T, DeError> {
        match self.get(key) {
            Some(v) => T::from_value(v).map_err(|e| DeError::msg(format!("field `{key}`: {e}"))),
            None => Ok(T::default()),
        }
    }

    /// An optional field: `None` when missing or JSON null.
    ///
    /// # Errors
    ///
    /// [`DeError`] if the field is present but has the wrong shape.
    pub fn opt_field<T: Deserialize>(&self, key: &str) -> Result<Option<T>, DeError> {
        match self.get(key) {
            Some(Value::Null) | None => Ok(None),
            Some(v) => {
                T::from_value(v).map(Some).map_err(|e| DeError::msg(format!("field `{key}`: {e}")))
            }
        }
    }

    /// A required string tag (e.g. the `type` field of internally tagged
    /// enums).
    ///
    /// # Errors
    ///
    /// [`DeError`] if the tag is missing or not a string.
    pub fn tag(&self, key: &str) -> Result<&'a str, DeError> {
        self.get(key)
            .and_then(Value::as_str)
            .ok_or_else(|| DeError::msg(format!("missing `{key}` tag")))
    }
}

/// Generates [`Serialize`] and [`Deserialize`] for a struct with named
/// fields. Each entry is `field` (JSON key = field name) or
/// `field => "json_key"` (the `#[serde(rename)]` case).
///
/// ```
/// struct P { x: f64, one_q: f64 }
/// serde::impl_serde_struct!(P { x, one_q => "1qGate" });
/// let v = serde::Serialize::to_value(&P { x: 1.0, one_q: 52.0 });
/// assert_eq!(v.get("1qGate").and_then(serde::Value::as_f64), Some(52.0));
/// ```
#[macro_export]
macro_rules! impl_serde_struct {
    ($ty:ty { $($field:ident $(=> $key:literal)?),+ $(,)? }) => {
        impl $crate::Serialize for $ty {
            fn to_value(&self) -> $crate::Value {
                $crate::Value::Object(vec![
                    $((
                        $crate::impl_serde_struct!(@key $field $($key)?).to_string(),
                        $crate::Serialize::to_value(&self.$field),
                    )),+
                ])
            }
        }
        impl $crate::Deserialize for $ty {
            fn from_value(v: &$crate::Value) -> Result<Self, $crate::DeError> {
                let obj = $crate::ObjectView::new(v)?;
                Ok(Self {
                    $($field: obj.field($crate::impl_serde_struct!(@key $field $($key)?))?),+
                })
            }
        }
    };
    (@key $field:ident) => { stringify!($field) };
    (@key $field:ident $key:literal) => { $key };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        for v in [0usize, 1, 42, 1_000_000] {
            assert_eq!(usize::from_value(&v.to_value()).unwrap(), v);
        }
        for v in [0.0f64, -1.5, 3.25e9, 1.0e-12] {
            assert_eq!(f64::from_value(&v.to_value()).unwrap(), v);
        }
        assert!(bool::from_value(&true.to_value()).unwrap());
        let s = "héllo".to_string();
        assert_eq!(String::from_value(&s.to_value()).unwrap(), s);
    }

    #[test]
    fn negative_number_rejected_for_unsigned() {
        let v = Value::Number(Number::from_f64(-1.0));
        assert!(usize::from_value(&v).is_err());
    }

    #[test]
    fn out_of_range_integers_rejected() {
        // 1e300 has fract() == 0; without the range check `as` would
        // saturate it to usize::MAX.
        let big = Value::Number(Number::from_f64(1e300));
        assert!(usize::from_value(&big).is_err());
        assert!(i64::from_value(&big).is_err());
        let nan = Value::Number(Number::from_f64(f64::NAN));
        assert!(usize::from_value(&nan).is_err());
        assert!(i32::from_value(&nan).is_err());
        assert!(u8::from_value(&Value::Number(Number::from_f64(256.0))).is_err());
        assert!(i8::from_value(&Value::Number(Number::from_f64(-129.0))).is_err());
    }

    #[test]
    fn option_and_vec_roundtrip() {
        let v: Option<Vec<(f64, f64)>> = Some(vec![(1.0, 2.0), (3.0, 4.0)]);
        let val = v.to_value();
        let back: Option<Vec<(f64, f64)>> = Deserialize::from_value(&val).unwrap();
        assert_eq!(back, v);
        let none: Option<f64> = Deserialize::from_value(&Value::Null).unwrap();
        assert_eq!(none, None);
    }

    #[test]
    fn object_view_policies() {
        let v = Value::Object(vec![
            ("a".into(), Value::Number(Number::from_f64(1.0))),
            ("site_seperation".into(), Value::Number(Number::from_f64(3.0))),
        ]);
        let obj = ObjectView::new(&v).unwrap();
        assert_eq!(obj.field::<f64>("a").unwrap(), 1.0);
        assert!(obj.field::<f64>("b").is_err());
        assert_eq!(obj.field_alias::<f64>("site_seperation", "site_separation").unwrap(), 3.0);
        assert_eq!(obj.field_alias::<f64>("nope", "site_seperation").unwrap(), 3.0);
        assert_eq!(obj.field_or_default::<Vec<f64>>("missing").unwrap(), Vec::<f64>::new());
        assert_eq!(obj.opt_field::<f64>("missing").unwrap(), None);
    }

    #[test]
    fn struct_macro_with_rename() {
        #[derive(Debug, PartialEq)]
        struct Demo {
            plain: usize,
            renamed: f64,
        }
        impl_serde_struct!(Demo { plain, renamed => "1qGate" });
        let d = Demo { plain: 7, renamed: 52.0 };
        let v = d.to_value();
        assert_eq!(v.get("1qGate").and_then(Value::as_f64), Some(52.0));
        assert_eq!(Demo::from_value(&v).unwrap(), d);
    }
}
