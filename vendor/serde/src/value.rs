//! The ordered JSON value model shared by the `serde` and `serde_json`
//! stand-ins.

/// A JSON number. Stored as `f64` (sufficient for this workspace: all
/// serialized integers are well below 2^53).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Number(f64);

impl Number {
    /// Wraps a float. Non-finite values are kept as-is; the writers emit
    /// them as `null` (matching upstream serde_json), and
    /// [`Value::all_numbers_finite`] lets callers reject them up front.
    pub fn from_f64(x: f64) -> Self {
        Self(x)
    }

    /// The numeric value.
    pub fn as_f64(self) -> f64 {
        self.0
    }

    /// Whether the value is a finite (JSON-representable) number.
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }
}

/// A JSON document tree. Objects keep insertion order so serialization is
/// deterministic and mirrors field declaration order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// A short name for the value's JSON type (used in error messages).
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// The boolean value, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The string slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The fields, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Object field lookup by key (first match).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Whether every number in the tree is finite, i.e. the tree serializes
    /// to JSON without any non-finite value degrading to `null`.
    pub fn all_numbers_finite(&self) -> bool {
        match self {
            Value::Number(n) => n.is_finite(),
            Value::Array(items) => items.iter().all(Value::all_numbers_finite),
            Value::Object(fields) => fields.iter().all(|(_, v)| v.all_numbers_finite()),
            Value::Null | Value::Bool(_) | Value::String(_) => true,
        }
    }

    /// Creates an empty object (builder entry point).
    pub fn object() -> Value {
        Value::Object(Vec::new())
    }

    /// Appends a field to an object (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object.
    pub fn with(mut self, key: &str, v: Value) -> Value {
        match &mut self {
            Value::Object(fields) => fields.push((key.to_owned(), v)),
            _ => panic!("Value::with on non-object"),
        }
        self
    }

    /// Prepends a field to an object (used for internally tagged enums,
    /// where the tag must come first).
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object.
    pub fn with_tag_first(mut self, key: &str, tag: &str) -> Value {
        match &mut self {
            Value::Object(fields) => {
                fields.insert(0, (key.to_owned(), Value::String(tag.to_owned())));
            }
            _ => panic!("Value::with_tag_first on non-object"),
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_lookup() {
        let v = Value::object()
            .with("a", Value::Number(Number::from_f64(1.0)))
            .with("b", Value::String("x".into()))
            .with_tag_first("type", "demo");
        let obj = v.as_object().unwrap();
        assert_eq!(obj[0].0, "type");
        assert_eq!(v.get("b").and_then(Value::as_str), Some("x"));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn non_finite_numbers_detected() {
        assert!(!Number::from_f64(f64::NAN).is_finite());
        assert!(!Number::from_f64(f64::INFINITY).is_finite());
        let v = Value::object().with(
            "xs",
            Value::Array(vec![
                Value::Number(Number::from_f64(1.0)),
                Value::Number(Number::from_f64(f64::NAN)),
            ]),
        );
        assert!(!v.all_numbers_finite());
        assert!(Value::object()
            .with("x", Value::Number(Number::from_f64(1.0)))
            .all_numbers_finite());
    }
}
