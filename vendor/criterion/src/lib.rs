//! In-tree stand-in for the `criterion` crate (the build environment has no
//! network access). Provides the entry points the workspace's
//! microbenchmarks use — `Criterion`, `benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `criterion_group!`, `criterion_main!`
//! — with a simple warmup + sample timing loop instead of upstream's
//! statistical machinery. Reports mean and min per benchmark on stdout.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Benchmark driver. Holds the sample count configuration.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets how many timed samples to take per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        println!("\ngroup {}", name.into());
        BenchmarkGroup { criterion: self }
    }

    /// Runs a single benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&name.into(), self.sample_size, &mut f);
    }
}

/// A group of related benchmarks (prints under a shared heading).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs one parameterized benchmark of the group.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_bench(&format!("  {}", id.0), self.criterion.sample_size, &mut |b| f(b, input));
    }

    /// Ends the group (printing-only in the stub).
    pub fn finish(self) {}
}

/// Identifies one parameterized benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id that is just the parameter's display form.
    pub fn from_parameter(p: impl std::fmt::Display) -> Self {
        Self(p.to_string())
    }

    /// An id with a function name and a parameter.
    pub fn new(name: impl std::fmt::Display, p: impl std::fmt::Display) -> Self {
        Self(format!("{name}/{p}"))
    }
}

/// Passed to the benchmark closure; `iter` times the routine.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine` over the configured number of samples (after one
    /// warmup call).
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        std_black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std_black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, f: &mut F) {
    let mut b = Bencher { samples: Vec::new(), sample_size };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{label}: no samples");
        return;
    }
    let total: Duration = b.samples.iter().sum();
    let mean = total / b.samples.len() as u32;
    let min = b.samples.iter().min().expect("non-empty samples");
    println!("{label}: mean {mean:?}, min {min:?} ({} samples)", b.samples.len());
}

/// Declares a benchmark group function, mirroring criterion's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo(c: &mut Criterion) {
        let mut group = c.benchmark_group("demo");
        for &n in &[10usize, 100] {
            group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
                b.iter(|| (0..n).sum::<usize>());
            });
        }
        group.finish();
        c.bench_function("single", |b| b.iter(|| black_box(2 + 2)));
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(3);
        targets = demo
    }

    #[test]
    fn harness_runs() {
        benches();
    }
}
