//! JSON writers: compact (no whitespace) and pretty (two-space indent),
//! matching upstream serde_json's output shapes.

use serde::Value;

pub(crate) fn compact(v: &Value) -> String {
    let mut out = String::new();
    write_compact(v, &mut out);
    out
}

pub(crate) fn pretty(v: &Value) -> String {
    let mut out = String::new();
    write_pretty(v, 0, &mut out);
    out
}

/// Rust's float `Display` prints the shortest decimal that round-trips and
/// omits a trailing `.0` — both valid JSON, so it is used directly.
/// Non-finite values become `null`, matching upstream serde_json.
fn write_number(x: f64, out: &mut String) {
    use std::fmt::Write;
    if x.is_finite() {
        write!(out, "{x}").expect("write to String cannot fail");
    } else {
        out.push_str("null");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write;
                write!(out, "\\u{:04x}", c as u32).expect("write to String cannot fail");
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_compact(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(n.as_f64(), out),
        Value::String(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_compact(val, out);
            }
            out.push('}');
        }
    }
}

fn indent(depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_pretty(v: &Value, depth: usize, out: &mut String) {
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                indent(depth + 1, out);
                write_pretty(item, depth + 1, out);
            }
            out.push('\n');
            indent(depth, out);
            out.push(']');
        }
        Value::Object(fields) if !fields.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                indent(depth + 1, out);
                write_string(k, out);
                out.push_str(": ");
                write_pretty(val, depth + 1, out);
            }
            out.push('\n');
            indent(depth, out);
            out.push('}');
        }
        other => write_compact(other, out),
    }
}
