//! Recursive-descent JSON parser producing [`serde::Value`] trees.

use crate::Error;
use serde::{Number, Value};

pub(crate) fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("invalid literal (expected `{lit}`)")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            fields.push((key, v));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(fields)),
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let cp = self.hex4()?;
                        // Surrogate pairs: a high surrogate must be followed
                        // by an escaped low surrogate.
                        let c = if (0xD800..0xDC00).contains(&cp) {
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(self.err("unpaired surrogate"));
                            }
                            let lo = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                            char::from_u32(c).ok_or_else(|| self.err("invalid code point"))?
                        } else {
                            char::from_u32(cp).ok_or_else(|| self.err("invalid code point"))?
                        };
                        out.push(c);
                    }
                    _ => return Err(self.err("invalid escape")),
                },
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Multi-byte UTF-8: copy the whole sequence.
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF7 => 4,
                        _ => return Err(self.err("invalid UTF-8")),
                    };
                    let start = self.pos - 1;
                    let end = start + len;
                    if end > self.bytes.len() {
                        return Err(self.err("truncated UTF-8"));
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut cp = 0u32;
        for _ in 0..4 {
            let b = self.bump().ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (b as char).to_digit(16).ok_or_else(|| self.err("invalid hex digit"))?;
            cp = cp * 16 + d;
        }
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number");
        text.parse::<f64>()
            .map(|x| Value::Number(Number::from_f64(x)))
            .map_err(|_| self.err("invalid number"))
    }
}
