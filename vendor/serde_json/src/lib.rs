//! In-tree stand-in for the `serde_json` crate (the build environment has no
//! network access). Provides the entry points the workspace uses with their
//! upstream signatures — `to_string`, `to_string_pretty`, `from_str`,
//! `to_value`, `from_value` and an [`Error`] type — over the ordered
//! [`serde::Value`] model.
//!
//! Output formatting matches upstream closely enough for the golden strings
//! asserted in tests: compact form has no whitespace; pretty form indents
//! with two spaces and separates keys with `": "`.

mod parse;
mod print;

pub use serde::Value;

use serde::{Deserialize, Serialize};

/// JSON error: parse failures (with offset) and shape mismatches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    pub(crate) fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }

    /// An error with a caller-supplied message (mirrors
    /// `serde::ser::Error::custom`).
    pub fn custom(msg: impl std::fmt::Display) -> Self {
        Self::new(msg.to_string())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Self::new(e.0)
    }
}

/// Serializes `value` to compact JSON (no whitespace).
///
/// # Errors
///
/// Kept for upstream signature compatibility; the stub serializer is
/// infallible, so this never returns `Err`.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(print::compact(&value.to_value()))
}

/// Serializes `value` to pretty JSON (two-space indent).
///
/// # Errors
///
/// Kept for upstream signature compatibility; the stub serializer is
/// infallible, so this never returns `Err`.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(print::pretty(&value.to_value()))
}

/// Parses a `T` from JSON text.
///
/// # Errors
///
/// [`Error`] on malformed JSON or on a shape mismatch with `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let v = parse::parse(s)?;
    Ok(T::from_value(&v)?)
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Reconstructs a `T` from a [`Value`] tree.
///
/// # Errors
///
/// [`Error`] on a shape mismatch.
pub fn from_value<T: Deserialize>(v: &Value) -> Result<T, Error> {
    Ok(T::from_value(v)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Number;

    #[test]
    fn compact_and_pretty_forms() {
        let v = Value::object()
            .with("type", Value::String("rydberg".into()))
            .with("zone_id", Value::Number(Number::from_f64(0.0)))
            .with("xs", Value::Array(vec![Value::Number(Number::from_f64(1.5))]));
        assert_eq!(
            to_string(&Raw(v.clone())).unwrap(),
            r#"{"type":"rydberg","zone_id":0,"xs":[1.5]}"#
        );
        let pretty = to_string_pretty(&Raw(v)).unwrap();
        assert!(pretty.contains("\"type\": \"rydberg\""), "{pretty}");
        assert!(pretty.starts_with("{\n  \"type\""), "{pretty}");
    }

    struct Raw(Value);
    impl serde::Serialize for Raw {
        fn to_value(&self) -> Value {
            self.0.clone()
        }
    }

    #[test]
    fn parse_roundtrip() {
        let text =
            r#"{"a": [1, 2.5, -3e2, 1.5e6], "b": "q\"uo\\te", "c": null, "d": true, "e": {}}"#;
        let v: Value = from_str(text).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[2].as_f64(), Some(-300.0));
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[3].as_f64(), Some(1.5e6));
        assert_eq!(v.get("b").unwrap().as_str(), Some(r#"q"uo\te"#));
        assert_eq!(v.get("c"), Some(&Value::Null));
        let text2 = to_string(&Raw(v.clone())).unwrap();
        let v2: Value = from_str(&text2).unwrap();
        assert_eq!(v, v2);
    }

    #[test]
    fn malformed_inputs_rejected() {
        for bad in
            ["{not json", "", "{\"a\":}", "[1,", "\"unterminated", "{\"a\":1}trailing", "nul"]
        {
            assert!(from_str::<Value>(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn unicode_escapes() {
        let v: Value = from_str(r#""Aé\n\t""#).unwrap();
        assert_eq!(v.as_str(), Some("Aé\n\t"));
    }

    #[test]
    fn empty_containers() {
        assert_eq!(to_string(&Raw(Value::Array(vec![]))).unwrap(), "[]");
        assert_eq!(to_string(&Raw(Value::object())).unwrap(), "{}");
        let pretty = to_string_pretty(&Raw(Value::Array(vec![]))).unwrap();
        assert_eq!(pretty, "[]");
    }

    #[test]
    fn integers_print_without_fraction() {
        let v = Value::Number(Number::from_f64(52.0));
        assert_eq!(to_string(&Raw(v)).unwrap(), "52");
    }
}
