//! In-tree stand-in for the `rayon` crate (the build environment has no
//! network access). Implements the slice/`Vec` data-parallel subset the
//! workspace uses — `par_iter()` / `into_par_iter()` with `map` and
//! `collect::<Vec<_>>()` — on top of `std::thread::scope`.
//!
//! Work is distributed dynamically via an atomic index queue and results are
//! written back by input index, so **output order always matches input
//! order** regardless of scheduling. That property is what makes the
//! workspace's parallel sweeps byte-identical to their serial counterparts.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Commonly used traits, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

/// Applies `f` to every item on a scoped thread pool, preserving input
/// order. Falls back to a sequential loop when only one core is available
/// or the input is tiny.
fn parallel_map<T: Send, R: Send>(items: Vec<T>, f: impl Fn(T) -> R + Sync) -> Vec<R> {
    let n = items.len();
    let threads = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1).min(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i].lock().expect("poisoned slot").take().expect("item taken once");
                let r = f(item);
                *results[i].lock().expect("poisoned result") = Some(r);
            });
        }
    });
    results
        .into_iter()
        .map(|m| m.into_inner().expect("poisoned result").expect("all slots filled"))
        .collect()
}

/// A (already materialized) parallel iterator. The stub realizes the item
/// list eagerly and parallelizes only the `map` stage — sufficient for the
/// fan-out/collect patterns the workspace uses.
pub trait ParallelIterator: Sized + Send {
    /// The element type.
    type Item: Send;

    /// Materializes the items in order, applying any parallel stages.
    fn run(self) -> Vec<Self::Item>;

    /// Parallel map.
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync + Send,
    {
        Map { base: self, f }
    }

    /// Parallel filter-map (runs `f` in parallel, drops `None`s).
    fn filter_map<R, F>(self, f: F) -> FilterMap<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> Option<R> + Sync + Send,
    {
        FilterMap { base: self, f }
    }

    /// Collects into a container (only `Vec<T>` is supported).
    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
        C::from_ordered(self.run())
    }
}

/// Collection target for [`ParallelIterator::collect`].
pub trait FromParallelIterator<T> {
    /// Builds the container from items in input order.
    fn from_ordered(items: Vec<T>) -> Self;
}

impl<T> FromParallelIterator<T> for Vec<T> {
    fn from_ordered(items: Vec<T>) -> Self {
        items
    }
}

/// Parallel `map` stage.
pub struct Map<I, F> {
    base: I,
    f: F,
}

impl<I, R, F> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    R: Send,
    F: Fn(I::Item) -> R + Sync + Send,
{
    type Item = R;

    fn run(self) -> Vec<R> {
        parallel_map(self.base.run(), self.f)
    }
}

/// Parallel `filter_map` stage.
pub struct FilterMap<I, F> {
    base: I,
    f: F,
}

impl<I, R, F> ParallelIterator for FilterMap<I, F>
where
    I: ParallelIterator,
    R: Send,
    F: Fn(I::Item) -> Option<R> + Sync + Send,
{
    type Item = R;

    fn run(self) -> Vec<R> {
        parallel_map(self.base.run(), self.f).into_iter().flatten().collect()
    }
}

/// Borrowing entry point: `.par_iter()` on slices and `Vec`s.
pub trait IntoParallelRefIterator<'a> {
    /// The iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// The element type.
    type Item: Send;

    /// A parallel iterator over references.
    fn par_iter(&'a self) -> Self::Iter;
}

/// Parallel iterator over a slice.
pub struct ParSlice<'a, T: Sync> {
    items: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for ParSlice<'a, T> {
    type Item = &'a T;

    fn run(self) -> Vec<&'a T> {
        self.items.iter().collect()
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Iter = ParSlice<'a, T>;
    type Item = &'a T;

    fn par_iter(&'a self) -> ParSlice<'a, T> {
        ParSlice { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Iter = ParSlice<'a, T>;
    type Item = &'a T;

    fn par_iter(&'a self) -> ParSlice<'a, T> {
        ParSlice { items: self }
    }
}

/// Owning entry point: `.into_par_iter()`.
pub trait IntoParallelIterator {
    /// The iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// The element type.
    type Item: Send;

    /// An owning parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

/// Parallel iterator over an owned `Vec`.
pub struct ParVec<T: Send> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for ParVec<T> {
    type Item = T;

    fn run(self) -> Vec<T> {
        self.items
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Iter = ParVec<T>;
    type Item = T;

    fn into_par_iter(self) -> ParVec<T> {
        ParVec { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Iter = ParVec<usize>;
    type Item = usize;

    fn into_par_iter(self) -> ParVec<usize> {
        ParVec { items: self.collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let input: Vec<usize> = (0..1000).collect();
        let doubled: Vec<usize> = input.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn into_par_iter_and_ranges() {
        let squares: Vec<usize> = (0..100).into_par_iter().map(|x| x * x).collect();
        assert_eq!(squares[99], 99 * 99);
        let owned: Vec<String> =
            vec!["a".to_string(), "b".to_string()].into_par_iter().map(|s| s + "!").collect();
        assert_eq!(owned, ["a!", "b!"]);
    }

    #[test]
    fn filter_map_drops_nones_in_order() {
        let evens: Vec<usize> =
            (0..20).into_par_iter().filter_map(|x| (x % 2 == 0).then_some(x)).collect();
        assert_eq!(evens, (0..20).step_by(2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_equals_serial_on_uneven_work() {
        let input: Vec<u64> = (0..200).collect();
        let work = |&x: &u64| -> u64 {
            // Uneven per-item cost to exercise the dynamic queue.
            let mut acc = x;
            for _ in 0..(x % 17) * 1000 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            acc
        };
        let par: Vec<u64> = input.par_iter().map(work).collect();
        let ser: Vec<u64> = input.iter().map(work).collect();
        assert_eq!(par, ser);
    }
}
